// Differential tests for the vectorized batch kernels (src/exec/
// scalar_program.h, src/exec/selection.h): every (batch_size, num_threads)
// combination must produce output bit-identical to the tuple-at-a-time
// interpreter and to the legacy recursive evaluator, over the paper corpus
// and a seeded random corpus; plus unit tests for Selection edge cases and
// the compiled scalar program (CSE, constant folding, staged filters).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/random_query.h"
#include "src/core/workload.h"
#include "src/exec/lower.h"
#include "src/exec/physical.h"
#include "src/exec/scalar_program.h"
#include "src/exec/selection.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

// ---------------------------------------------------------------------------
// Selection edge cases.

TEST(SelectionTest, EmptySelection) {
  Selection dense = Selection::Dense(42, 0);
  EXPECT_TRUE(dense.empty());
  EXPECT_EQ(dense.size(), 0u);
  Selection sparse = Selection::Sparse(nullptr, 0);
  EXPECT_TRUE(sparse.empty());
}

TEST(SelectionTest, FullDenseBatchIndexesAbsoluteRows) {
  Selection sel = Selection::Dense(2048, 1024);
  EXPECT_TRUE(sel.dense());
  EXPECT_EQ(sel.size(), 1024u);
  EXPECT_EQ(sel[0], 2048u);
  EXPECT_EQ(sel[1023], 2048u + 1023u);
  EXPECT_EQ(sel.indices(), nullptr);
  EXPECT_EQ(sel.first(), 2048u);
}

TEST(SelectionTest, SingleRowTailBatch) {
  // The last batch of a 4097-row input at batch_size 1024 covers one row.
  Selection sel = Selection::Dense(4096, 1);
  EXPECT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 4096u);
}

TEST(SelectionTest, SparseViewBorrowsIndexArray) {
  const uint32_t idx[] = {3, 7, 11};
  Selection sel = Selection::Sparse(idx, 3);
  EXPECT_FALSE(sel.dense());
  EXPECT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel[0], 3u);
  EXPECT_EQ(sel[2], 11u);
  EXPECT_EQ(sel.indices(), idx);
}

// ---------------------------------------------------------------------------
// Compiled scalar programs, driven directly through a lowered plan.

class BatchProgramTest : public ::testing::Test {
 protected:
  BatchProgramTest() : factory_(ctx_), registry_(BuiltinFunctions()) {
    EXPECT_TRUE(db_.AddRelation("R", 2).ok());
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(
          db_.Insert("R", {Value::Int(i), Value::Int(100 - i)}).ok());
    }
  }

  const ScalarExpr* Apply1(const char* fn, const ScalarExpr* a) {
    return factory_.exprs().Apply(ctx_.symbols().Intern(fn),
                                  std::vector<const ScalarExpr*>{a});
  }
  const ScalarExpr* Apply2(const char* fn, const ScalarExpr* a,
                           const ScalarExpr* b) {
    return factory_.exprs().Apply(ctx_.symbols().Intern(fn),
                                  std::vector<const ScalarExpr*>{a, b});
  }

  AstContext ctx_;
  AlgebraFactory factory_;
  FunctionRegistry registry_;
  Database db_;
};

// A subtree repeated across output columns is computed once per batch:
// runtime function_calls drop below the tuple path's per-column count.
TEST_F(BatchProgramTest, CommonSubexpressionsShareWork) {
  ExprFactory& e = factory_.exprs();
  const ScalarExpr* shared = Apply1("succ", e.Col(0));
  const AlgExpr* plan = factory_.Project(
      {Apply1("double", shared), Apply1("neg", shared)}, factory_.Rel("R", 2));

  AlgebraEvalOptions tuple_opts;
  tuple_opts.batch_size = 1;
  tuple_opts.num_threads = 1;
  AlgebraEvalOptions batch_opts;
  batch_opts.batch_size = 16;
  batch_opts.num_threads = 1;
  AlgebraEvalStats ts, bs;
  auto tuple = EvaluateAlgebra(ctx_, plan, db_, registry_, &ts, tuple_opts);
  auto batch = EvaluateAlgebra(ctx_, plan, db_, registry_, &bs, batch_opts);
  ASSERT_TRUE(tuple.ok());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*tuple, *batch);
  // Tuple path: 3 applications per row (succ twice). Batch: 3 ops but the
  // shared succ register evaluates once, so 3 counted lanes per row.
  EXPECT_EQ(ts.function_calls, 4u * 50u);
  EXPECT_EQ(bs.function_calls, 3u * 50u);
}

// An all-constant application folds at compile time: zero runtime calls.
TEST_F(BatchProgramTest, ConstantApplicationsFoldAtCompileTime) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* plan = factory_.Project(
      {e.Col(0), Apply1("succ", e.ConstValue(Value::Int(41)))},
      factory_.Rel("R", 2));

  AlgebraEvalOptions batch_opts;
  batch_opts.batch_size = 16;
  batch_opts.num_threads = 1;
  AlgebraEvalStats bs;
  auto batch = EvaluateAlgebra(ctx_, plan, db_, registry_, &bs, batch_opts);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(bs.function_calls, 0u);
  EXPECT_TRUE(batch->Contains({Value::Int(7), Value::Int(42)}));
}

// Staged filter evaluation: a second condition only runs over lanes that
// survived the first, so per-lane work never exceeds the tuple path's
// short-circuit count.
TEST_F(BatchProgramTest, StagedFilterMatchesShortCircuitCounts) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* plan = factory_.Select(
      {{Apply1("half", e.Col(0)), AlgCompareOp::kLt, e.Col(1)},
       {Apply1("succ", e.Col(0)), AlgCompareOp::kNe, e.Col(1)}},
      factory_.Rel("R", 2));

  AlgebraEvalOptions tuple_opts;
  tuple_opts.batch_size = 1;
  tuple_opts.num_threads = 1;
  AlgebraEvalOptions batch_opts;
  batch_opts.batch_size = 7;
  batch_opts.num_threads = 1;
  AlgebraEvalStats ts, bs;
  auto tuple = EvaluateAlgebra(ctx_, plan, db_, registry_, &ts, tuple_opts);
  auto batch = EvaluateAlgebra(ctx_, plan, db_, registry_, &bs, batch_opts);
  ASSERT_TRUE(tuple.ok());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*tuple, *batch);
  EXPECT_EQ(bs.function_calls, ts.function_calls);
}

// Mixed int/string comparison columns take the order-key gather path and
// must order exactly like Value's total order (ints before strings,
// strings lexicographic including 8-byte-prefix ties).
TEST_F(BatchProgramTest, MixedOrderComparisonsMatchTuplePath) {
  Database db;
  ASSERT_TRUE(db.AddRelation("M", 2).ok());
  const std::vector<Value> vals = {
      Value::Int(-5),
      Value::Int(0),
      Value::Int(12),
      Value::Str("alpha"),
      Value::Str("alphabet"),    // shares an 8-byte prefix region
      Value::Str("alphabets"),   // distinct beyond the prefix
      Value::Str("zeta"),
      Value::Str(""),
  };
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      ASSERT_TRUE(db.Insert("M", {a, b}).ok());
    }
  }
  ExprFactory& e = factory_.exprs();
  for (AlgCompareOp op : {AlgCompareOp::kLt, AlgCompareOp::kLe,
                          AlgCompareOp::kEq, AlgCompareOp::kNe}) {
    const AlgExpr* plan =
        factory_.Select({{e.Col(0), op, e.Col(1)}}, factory_.Rel("M", 2));
    AlgebraEvalOptions tuple_opts;
    tuple_opts.batch_size = 1;
    AlgebraEvalOptions batch_opts;
    batch_opts.batch_size = 1024;
    auto tuple = EvaluateAlgebra(ctx_, plan, db, registry_,
                                 /*stats=*/nullptr, tuple_opts);
    auto batch = EvaluateAlgebra(ctx_, plan, db, registry_,
                                 /*stats=*/nullptr, batch_opts);
    ASSERT_TRUE(tuple.ok());
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(tuple->ToString(), batch->ToString())
        << "op=" << static_cast<int>(op);
  }
}

// The fused FilterSelect→ProjectMap pair must keep both operators' row
// accounting identical to the unfused tuple path, and the batch counters
// must surface in the profile.
TEST_F(BatchProgramTest, FusedFilterProjectKeepsRowAccounting) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* plan = factory_.Project(
      {Apply2("plus", e.Col(0), e.Col(1))},
      factory_.Select({{e.Col(0), AlgCompareOp::kLt, e.Col(1)}},
                      factory_.Rel("R", 2)));

  for (size_t batch_size : {size_t{1}, size_t{16}}) {
    ExecOptions opts;
    opts.batch_size = batch_size;
    opts.num_threads = 1;
    auto physical = Lower(ctx_, plan, registry_, opts);
    ASSERT_TRUE(physical.ok());
    ExecProfile profile;
    auto result = physical->ExecuteToRelation(db_, &profile);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(profile.op, PhysOpKind::kProjectMap);
    ASSERT_EQ(profile.children.size(), 1u);
    const ExecProfile& filter = profile.children[0];
    ASSERT_EQ(filter.op, PhysOpKind::kFilterSelect);
    // R holds (i, 100-i) for i in [0,50): i < 100-i holds for every row.
    EXPECT_EQ(filter.stats.rows_in, 50u);
    EXPECT_EQ(filter.stats.rows_out, 50u);
    EXPECT_EQ(profile.stats.rows_in, 50u);
    if (batch_size > 1) {
      EXPECT_GT(profile.stats.batches, 0u);
      EXPECT_EQ(profile.stats.batch_rows, 50u);
      EXPECT_EQ(profile.stats.batch_sel_rows, 50u);
      // Fused: the filter materializes nothing, so it copies nothing.
      EXPECT_EQ(filter.stats.tuple_copies, 0u);
      std::string rendered = ExecProfileToString(profile);
      EXPECT_NE(rendered.find("batches="), std::string::npos);
      EXPECT_NE(rendered.find("sel_density="), std::string::npos);
    }
  }
}

// Profile JSON round-trip including the batch counters.
TEST_F(BatchProgramTest, BatchCountersRoundTripThroughJson) {
  ExecProfile p;
  p.op = PhysOpKind::kProjectMap;
  p.stats.batches = 7;
  p.stats.batch_rows = 7000;
  p.stats.batch_sel_rows = 4096;
  auto parsed = ExecProfileFromJson(ExecProfileToJson(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->stats.batches, 7u);
  EXPECT_EQ(parsed->stats.batch_rows, 7000u);
  EXPECT_EQ(parsed->stats.batch_sel_rows, 4096u);
}

// ---------------------------------------------------------------------------
// Differential grid over the paper corpus and a random corpus.

struct CorpusQuery {
  const char* text;
  std::vector<std::pair<const char*, int>> schema;
};

const CorpusQuery kPaperCorpus[] = {
    {"{y | exists x (R(x) and y = g(f(x)))}", {{"R", 1}}},                // q1
    {"{x | R(x) and exists y (f(x) = y and not R(y))}", {{"R", 1}}},      // q2
    {"{x, y | B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
     "((h(x) != y and k(x) != y) or P(x, y)))}",
     {{"B", 1}, {"R", 2}, {"P", 2}}},                                     // q4
    {"{x, y | (R(x) and f(x) = y) or (S(y) and g(y) = x)}",
     {{"R", 1}, {"S", 1}}},                                               // q5
    {"{x, y, z | R(x, y, z) and not S(y, z)}", {{"R", 3}, {"S", 2}}},     // q6
};

FunctionRegistry CorpusFunctions() {
  FunctionRegistry reg = BuiltinFunctions();
  auto mod_fn = [](int64_t mul, int64_t add) {
    return [mul, add](std::span<const Value> a) {
      int64_t n = a[0].is_int() ? a[0].AsInt() : 17;
      return Value::Int((n * mul + add) % 7);
    };
  };
  reg.Register("f", 1, mod_fn(1, 1));
  reg.Register("g", 1, mod_fn(2, 0));
  reg.Register("h", 1, mod_fn(3, 2));
  reg.Register("k", 1, mod_fn(1, 4));
  return reg;
}

const size_t kBatchSizes[] = {1, 7, 1024};
const size_t kThreadCounts[] = {1, 4, 0};

// Paper corpus on inputs large enough to exercise the parallel batch
// kernels: every (batch_size, num_threads) cell must match the legacy
// interpreter bit-for-bit (ToString compares the normalized rendering).
TEST(BatchDifferentialTest, PaperCorpusIdenticalAcrossBatchGrid) {
  FunctionRegistry registry = CorpusFunctions();
  for (const CorpusQuery& cq : kPaperCorpus) {
    AstContext ctx;
    auto q = ParseQuery(ctx, cq.text);
    ASSERT_TRUE(q.ok()) << cq.text;
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok()) << cq.text;
    Database db;
    for (const auto& [name, arity] : cq.schema) {
      AddRandomTuples(db, name, arity, /*rows=*/6000, /*value_pool=*/100000,
                      /*seed=*/arity * 7 + 1);
    }
    auto legacy = EvaluateAlgebraLegacy(ctx, t->plan, db, registry);
    ASSERT_TRUE(legacy.ok()) << cq.text;
    const std::string want = legacy->ToString();
    for (size_t batch_size : kBatchSizes) {
      for (size_t threads : kThreadCounts) {
        AlgebraEvalOptions options;
        options.batch_size = batch_size;
        options.num_threads = threads;
        auto phys = EvaluateAlgebra(ctx, t->plan, db, registry,
                                    /*stats=*/nullptr, options);
        ASSERT_TRUE(phys.ok()) << cq.text;
        EXPECT_EQ(phys->ToString(), want)
            << cq.text << " differs at batch_size=" << batch_size
            << " num_threads=" << threads;
      }
    }
  }
}

// 200 seeded random em-allowed queries through the full grid. Small
// databases sweep plan shapes (including odd arities and empty inputs)
// through the batched entry points; function-call counts must never
// exceed the tuple path's (CSE and folding only remove work).
TEST(BatchDifferentialTest, RandomQueriesIdenticalAcrossBatchGrid) {
  FunctionRegistry registry = CorpusFunctions();
  registry.Register("rf0", 1, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 17;
    return Value::Int((n + 1) % 7);
  });
  registry.Register("rf1", 2, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 3;
    int64_t m = a[1].is_int() ? a[1].AsInt() : 5;
    return Value::Int((n * 3 + m) % 7);
  });

  int checked = 0;
  for (uint64_t seed = 3000; checked < 200 && seed < 3100; ++seed) {
    AstContext ctx;
    RandomQueryGen gen(ctx, seed);
    for (int i = 0; i < 8 && checked < 200; ++i) {
      auto q = gen.NextEmAllowed();
      if (!q.has_value()) continue;
      auto t = TranslateQuery(ctx, *q);
      ASSERT_TRUE(t.ok()) << QueryToString(ctx, *q);
      Database db;
      const std::vector<int>& arities = gen.relation_arities();
      for (size_t r = 0; r < arities.size(); ++r) {
        AddRandomTuples(db, "R" + std::to_string(r), arities[r], /*rows=*/6,
                        /*value_pool=*/6, seed * 613 + r * 31 + i);
      }
      AlgebraEvalStats ls;
      auto legacy = EvaluateAlgebraLegacy(ctx, t->plan, db, registry, &ls);
      ASSERT_TRUE(legacy.ok()) << QueryToString(ctx, *q);
      const std::string want = legacy->ToString();
      for (size_t batch_size : kBatchSizes) {
        for (size_t threads : kThreadCounts) {
          AlgebraEvalOptions options;
          options.batch_size = batch_size;
          options.num_threads = threads;
          AlgebraEvalStats ps;
          auto phys = EvaluateAlgebra(ctx, t->plan, db, registry, &ps,
                                      options);
          ASSERT_TRUE(phys.ok()) << QueryToString(ctx, *q);
          ASSERT_EQ(phys->ToString(), want)
              << QueryToString(ctx, *q) << "\nplan: "
              << AlgExprToString(ctx, t->plan)
              << "\nbatch_size=" << batch_size
              << " num_threads=" << threads;
          EXPECT_EQ(ls.tuples_produced, ps.tuples_produced)
              << QueryToString(ctx, *q) << " batch_size=" << batch_size;
          EXPECT_LE(ps.function_calls, ls.function_calls)
              << QueryToString(ctx, *q) << " batch_size=" << batch_size;
        }
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, 200) << "generator exhausted before 200 queries";
}

// The morsel threshold knob: an explicit option forces tiny inputs onto
// the parallel path (par_workers recorded), and the env knob is read only
// when the option is 0.
TEST(BatchDifferentialTest, MorselThresholdOptionControlsFanOut) {
  AstContext ctx;
  AlgebraFactory factory(ctx);
  ExprFactory& e = factory.exprs();
  FunctionRegistry registry = BuiltinFunctions();
  Database db;
  ASSERT_TRUE(db.AddRelation("R", 1).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Insert("R", {Value::Int(i)}).ok());
  }
  Symbol succ = ctx.symbols().Intern("succ");
  const AlgExpr* plan = factory.Project(
      {e.Apply(succ, std::vector<const ScalarExpr*>{e.Col(0)})},
      factory.Rel("R", 1));

  auto run = [&](ExecOptions opts) {
    auto physical = Lower(ctx, plan, registry, opts);
    EXPECT_TRUE(physical.ok());
    ExecProfile profile;
    auto result = physical->ExecuteToRelation(db, &profile);
    EXPECT_TRUE(result.ok());
    return profile.stats.par_morsels;
  };

  ExecOptions default_opts;
  default_opts.num_threads = 4;
  EXPECT_EQ(run(default_opts), 0u);  // 100 rows < default 4096 floor

  ExecOptions low_floor = default_opts;
  low_floor.morsel_threshold = 10;
  EXPECT_GT(run(low_floor), 0u);  // forced onto the parallel path
}

}  // namespace
}  // namespace emcalc
