// Differential tests for the physical execution layer (src/exec/): the
// lowered plans must agree tuple-for-tuple with the legacy recursive
// interpreter and with the reference calculus evaluator, over the paper
// corpus and a large seeded random corpus; the shared-ownership execution
// must copy strictly fewer relations/tuples than the legacy memo path.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/compiler.h"
#include "src/core/random_query.h"
#include "src/core/workload.h"
#include "src/eval/calculus_eval.h"
#include "src/exec/lower.h"
#include "src/exec/physical.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

// Small total functions with compact integer images so the oracle's term
// closures stay tiny.
FunctionRegistry CorpusFunctions() {
  FunctionRegistry reg = BuiltinFunctions();
  auto mod_fn = [](int64_t mul, int64_t add) {
    return [mul, add](std::span<const Value> a) {
      int64_t n = a[0].is_int() ? a[0].AsInt() : 17;
      return Value::Int((n * mul + add) % 7);
    };
  };
  reg.Register("f", 1, mod_fn(1, 1));
  reg.Register("g", 1, mod_fn(2, 0));
  reg.Register("h", 1, mod_fn(3, 2));
  reg.Register("k", 1, mod_fn(1, 4));
  return reg;
}

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : factory_(ctx_), registry_(BuiltinFunctions()) {
    EXPECT_TRUE(db_.AddRelation("R", 2).ok());
    for (int i = 1; i <= 3; ++i) {
      EXPECT_TRUE(db_.Insert("R", {Value::Int(i), Value::Int(10 * i)}).ok());
    }
    EXPECT_TRUE(db_.Insert("S", {Value::Int(10)}).ok());
    EXPECT_TRUE(db_.Insert("S", {Value::Int(99)}).ok());
  }

  // Runs `plan` through both evaluators and checks they agree; returns the
  // physical answer.
  Relation RunBoth(const AlgExpr* plan) {
    auto legacy = EvaluateAlgebraLegacy(ctx_, plan, db_, registry_);
    auto phys = EvaluateAlgebra(ctx_, plan, db_, registry_);
    EXPECT_TRUE(legacy.ok()) << legacy.status().ToString();
    EXPECT_TRUE(phys.ok()) << phys.status().ToString();
    if (legacy.ok() && phys.ok()) {
      EXPECT_EQ(*legacy, *phys) << AlgExprToString(ctx_, plan);
    }
    return phys.ok() ? *phys : Relation(plan->arity());
  }

  PhysOpKind RootKind(const AlgExpr* plan) {
    auto physical = Lower(ctx_, plan, registry_);
    EXPECT_TRUE(physical.ok()) << physical.status().ToString();
    return physical.ok() ? physical->root()->kind : PhysOpKind::kSingleton;
  }

  AstContext ctx_;
  AlgebraFactory factory_;
  FunctionRegistry registry_;
  Database db_;
};

// Lower() must produce a physical plan for every logical node kind, with
// the documented operator mapping.
TEST_F(ExecTest, LowerCoversEveryLogicalNodeKind) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* rel = factory_.Rel("R", 2);
  EXPECT_EQ(RootKind(rel), PhysOpKind::kScan);
  EXPECT_EQ(RootKind(factory_.Project({e.Col(0)}, rel)),
            PhysOpKind::kProjectMap);
  EXPECT_EQ(RootKind(factory_.Select(
                {{e.Col(0), AlgCompareOp::kLt, e.Col(1)}}, rel)),
            PhysOpKind::kFilterSelect);
  EXPECT_EQ(RootKind(factory_.Join({{e.Col(1), AlgCompareOp::kEq, e.Col(2)}},
                                   rel, factory_.Rel("S", 1))),
            PhysOpKind::kHashJoin);
  EXPECT_EQ(RootKind(factory_.Join({}, rel, factory_.Rel("S", 1))),
            PhysOpKind::kNestedLoopJoin);
  EXPECT_EQ(RootKind(factory_.Union(rel, rel)), PhysOpKind::kUnionMerge);
  EXPECT_EQ(RootKind(factory_.Diff(rel, rel)), PhysOpKind::kDiffAnti);
  EXPECT_EQ(RootKind(factory_.Unit()), PhysOpKind::kSingleton);
  EXPECT_EQ(RootKind(factory_.Empty(3)), PhysOpKind::kSingleton);
  EXPECT_EQ(RootKind(factory_.Adom(0, {}, {})), PhysOpKind::kAdomScan);
}

// A HashJoin is chosen only when a hashable equality exists: an
// inequality-only join must fall back to nested loops, and a mixed
// condition set hashes the equality and filters the rest as residual.
TEST_F(ExecTest, HashJoinRequiresEqualityKeys) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* lt_only = factory_.Join(
      {{e.Col(1), AlgCompareOp::kLt, e.Col(2)}}, factory_.Rel("R", 2),
      factory_.Rel("S", 1));
  EXPECT_EQ(RootKind(lt_only), PhysOpKind::kNestedLoopJoin);
  RunBoth(lt_only);

  const AlgExpr* mixed = factory_.Join(
      {{e.Col(1), AlgCompareOp::kEq, e.Col(2)},
       {e.Col(0), AlgCompareOp::kLt, e.Col(2)}},
      factory_.Rel("R", 2), factory_.Rel("S", 1));
  auto physical = Lower(ctx_, mixed, registry_);
  ASSERT_TRUE(physical.ok());
  ASSERT_EQ(physical->root()->kind, PhysOpKind::kHashJoin);
  EXPECT_EQ(physical->root()->keys.size(), 1u);
  EXPECT_EQ(physical->root()->conds.size(), 1u);
  RunBoth(mixed);
}

// Every operator evaluates identically to the legacy interpreter.
TEST_F(ExecTest, OperatorsMatchLegacyInterpreter) {
  ExprFactory& e = factory_.exprs();
  Symbol succ = ctx_.symbols().Intern("succ");
  const AlgExpr* rel = factory_.Rel("R", 2);
  std::vector<const AlgExpr*> plans = {
      rel,
      factory_.Project({e.Col(1), e.Apply(succ, std::vector<const ScalarExpr*>{
                                              e.Col(0)})},
                       rel),
      factory_.Select({{e.Col(0), AlgCompareOp::kNe,
                        e.ConstValue(Value::Int(2))}},
                      rel),
      factory_.Join({{e.Col(1), AlgCompareOp::kEq, e.Col(2)}}, rel,
                    factory_.Rel("S", 1)),
      factory_.Join({}, rel, factory_.Rel("S", 1)),
      factory_.Union(rel, rel),
      factory_.Diff(rel, factory_.Select({{e.Col(0), AlgCompareOp::kEq,
                                           e.ConstValue(Value::Int(1))}},
                                         rel)),
      factory_.Unit(),
      factory_.Empty(2),
      factory_.Adom(1, {succ}, {}),
  };
  for (const AlgExpr* plan : plans) RunBoth(plan);
}

// The wrapper's aggregated stats must reproduce the legacy counters.
TEST_F(ExecTest, WrapperStatsMatchLegacyCounters) {
  ExprFactory& e = factory_.exprs();
  Symbol succ = ctx_.symbols().Intern("succ");
  const AlgExpr* shared = factory_.Select(
      {{e.Col(0), AlgCompareOp::kNe, e.ConstValue(Value::Int(9))}},
      factory_.Rel("R", 2));
  const AlgExpr* plan = factory_.Diff(
      shared, factory_.Project(
                  {e.Col(0), e.Apply(succ, std::vector<const ScalarExpr*>{
                                         e.Col(1)})},
                  shared));
  AlgebraEvalStats legacy, phys;
  ASSERT_TRUE(EvaluateAlgebraLegacy(ctx_, plan, db_, registry_, &legacy).ok());
  ASSERT_TRUE(EvaluateAlgebra(ctx_, plan, db_, registry_, &phys).ok());
  EXPECT_EQ(phys.tuples_scanned, legacy.tuples_scanned);
  EXPECT_EQ(phys.tuples_produced, legacy.tuples_produced);
  EXPECT_EQ(phys.function_calls, legacy.function_calls);
}

// Validation failures surface before execution, as in the legacy path.
TEST_F(ExecTest, ValidationErrorsMatchLegacy) {
  const AlgExpr* unknown = factory_.Rel("NoSuch", 1);
  auto physical = Lower(ctx_, unknown, registry_);
  ASSERT_TRUE(physical.ok());  // functions resolve; relations bind per-db
  auto result = physical->Execute(db_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);

  const AlgExpr* wrong_arity = factory_.Rel("R", 3);
  auto r2 = Lower(ctx_, wrong_arity, registry_);
  ASSERT_TRUE(r2.ok());
  auto e2 = r2->Execute(db_);
  ASSERT_FALSE(e2.ok());
  EXPECT_EQ(e2.status().code(), StatusCode::kInvalidArgument);

  ExprFactory& e = factory_.exprs();
  const AlgExpr* bad_fn = factory_.Project(
      {e.Apply(ctx_.symbols().Intern("mystery"),
               std::vector<const ScalarExpr*>{e.Col(0)})},
      factory_.Rel("R", 2));
  auto r3 = Lower(ctx_, bad_fn, registry_);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kNotFound);
}

// The legacy memo path copies a shared subplan's whole result twice (once
// into the memo map, once per extra reference out of it); the execution
// layer's Materialize hands the same relation out by pointer. This is the
// copy-counting check of the shared-ownership refactor.
TEST_F(ExecTest, MaterializeSharesWithoutCopying) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* shared = factory_.Select(
      {{e.Col(0), AlgCompareOp::kNe, e.ConstValue(Value::Int(0))}},
      factory_.Rel("R", 2));
  const AlgExpr* plan = factory_.Union(
      factory_.Select({{e.Col(0), AlgCompareOp::kEq,
                        e.ConstValue(Value::Int(1))}},
                      shared),
      factory_.Select({{e.Col(0), AlgCompareOp::kEq,
                        e.ConstValue(Value::Int(2))}},
                      shared));

  uint64_t before = Relation::CopiesMade();
  auto legacy = EvaluateAlgebraLegacy(ctx_, plan, db_, registry_);
  ASSERT_TRUE(legacy.ok());
  uint64_t legacy_copies = Relation::CopiesMade() - before;

  before = Relation::CopiesMade();
  auto phys = EvaluateAlgebra(ctx_, plan, db_, registry_);
  ASSERT_TRUE(phys.ok());
  uint64_t phys_copies = Relation::CopiesMade() - before;

  EXPECT_EQ(*legacy, *phys);
  EXPECT_EQ(phys_copies, 0u);
  EXPECT_GT(legacy_copies, phys_copies);

  // The shared node lowers to a Materialize with two consumers; the second
  // reference renders as a shared stub in the profile.
  auto physical = Lower(ctx_, plan, registry_);
  ASSERT_TRUE(physical.ok());
  ExecProfile profile;
  ASSERT_TRUE(physical->Execute(db_, &profile).ok());
  std::string rendered = ExecProfileToString(profile);
  EXPECT_NE(rendered.find("Materialize(consumers=2)"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("shared result"), std::string::npos) << rendered;
}

// Union/difference-heavy plans (the q6 family) copy measurably fewer
// tuples through the execution layer, and the copy counter is exposed in
// the profile.
TEST_F(ExecTest, Q6FamilyCopiesFewerTuples) {
  FunctionRegistry registry = BuiltinFunctions();
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x, y, z | R(x, y, z) and not S(y, z)}");
  ASSERT_TRUE(q.ok());
  auto t = TranslateQuery(ctx, *q);
  ASSERT_TRUE(t.ok());
  Database db = MakeQ6Instance(400, 200, /*value_pool=*/50, 7);

  uint64_t before = Relation::TuplesCopied();
  auto legacy = EvaluateAlgebraLegacy(ctx, t->plan, db, registry);
  ASSERT_TRUE(legacy.ok());
  uint64_t legacy_tuples = Relation::TuplesCopied() - before;

  before = Relation::TuplesCopied();
  AlgebraEvalStats stats;
  auto phys = EvaluateAlgebra(ctx, t->plan, db, registry, &stats);
  ASSERT_TRUE(phys.ok());
  uint64_t phys_tuples = Relation::TuplesCopied() - before;

  EXPECT_EQ(*legacy, *phys);
  EXPECT_LT(phys_tuples, legacy_tuples);
  // The operator-attributed copy counter is exposed through the profile
  // aggregation (the difference copies its surviving tuples).
  EXPECT_GT(stats.tuple_copies, 0u);
}

struct CorpusQuery {
  const char* text;
  std::vector<std::pair<const char*, int>> schema;
};

// The paper's named corpus (q1–q7; q3 names the paper's running safety
// discussion and has no query text, q7 must be rejected — see below).
const CorpusQuery kPaperCorpus[] = {
    {"{y | exists x (R(x) and y = g(f(x)))}", {{"R", 1}}},                // q1
    {"{x | R(x) and exists y (f(x) = y and not R(y))}", {{"R", 1}}},      // q2
    {"{x, y | B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
     "((h(x) != y and k(x) != y) or P(x, y)))}",
     {{"B", 1}, {"R", 2}, {"P", 2}}},                                     // q4
    {"{x, y | (R(x) and f(x) = y) or (S(y) and g(y) = x)}",
     {{"R", 1}, {"S", 1}}},                                               // q5
    {"{x, y, z | R(x, y, z) and not S(y, z)}", {{"R", 3}, {"S", 2}}},     // q6
};

TEST(ExecCorpusTest, PaperCorpusAgreesWithLegacyAndOracle) {
  FunctionRegistry registry = CorpusFunctions();
  for (const CorpusQuery& cq : kPaperCorpus) {
    AstContext ctx;
    auto q = ParseQuery(ctx, cq.text);
    ASSERT_TRUE(q.ok()) << cq.text;
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok()) << cq.text << " : " << t.status().ToString();
    for (uint64_t seed : {1u, 2u, 3u}) {
      Database db;
      for (const auto& [name, arity] : cq.schema) {
        AddRandomTuples(db, name, arity, /*rows=*/6, /*value_pool=*/6,
                        seed * 131 + arity);
      }
      auto legacy = EvaluateAlgebraLegacy(ctx, t->plan, db, registry);
      auto phys = EvaluateAlgebra(ctx, t->plan, db, registry);
      ASSERT_TRUE(legacy.ok()) << cq.text;
      ASSERT_TRUE(phys.ok()) << cq.text;
      EXPECT_EQ(*legacy, *phys) << cq.text;
      CalculusEvalOptions oracle_options;
      oracle_options.domain_budget = 5000;
      auto oracle = EvaluateCalculus(ctx, *q, db, registry, oracle_options);
      if (oracle.ok()) {
        EXPECT_EQ(*phys, *oracle) << cq.text;
      }
    }
  }
}

TEST(ExecCorpusTest, Q7StaysRejected) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | x = 0 and forall u (exists v (plus(u, 1) = v))}");
  ASSERT_TRUE(q.ok());
  auto t = TranslateQuery(ctx, *q);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotSafe);
}

// 500 seeded random em-allowed queries: the execution layer must agree
// with the legacy interpreter on every one (answers and aggregate stats),
// and with the reference calculus evaluator whenever its domain budget
// allows.
TEST(ExecCorpusTest, RandomEmAllowedQueriesAgree) {
  FunctionRegistry registry = CorpusFunctions();
  // Small modular functions registered under the generator's names.
  registry.Register("rf0", 1, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 17;
    return Value::Int((n + 1) % 7);
  });
  registry.Register("rf1", 2, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 3;
    int64_t m = a[1].is_int() ? a[1].AsInt() : 5;
    return Value::Int((n * 3 + m) % 7);
  });

  int checked = 0;
  int oracle_checked = 0;
  for (uint64_t seed = 0; checked < 500 && seed < 200; ++seed) {
    AstContext ctx;
    RandomQueryGen gen(ctx, seed);
    for (int i = 0; i < 10 && checked < 500; ++i) {
      auto q = gen.NextEmAllowed();
      if (!q.has_value()) continue;
      auto t = TranslateQuery(ctx, *q);
      ASSERT_TRUE(t.ok()) << QueryToString(ctx, *q) << "\n"
                          << t.status().ToString();
      Database db;
      const std::vector<int>& arities = gen.relation_arities();
      for (size_t r = 0; r < arities.size(); ++r) {
        AddRandomTuples(db, "R" + std::to_string(r), arities[r], /*rows=*/5,
                        /*value_pool=*/6, seed * 977 + r * 101 + i);
      }
      AlgebraEvalStats ls, ps;
      auto legacy = EvaluateAlgebraLegacy(ctx, t->plan, db, registry, &ls);
      auto phys = EvaluateAlgebra(ctx, t->plan, db, registry, &ps);
      ASSERT_TRUE(legacy.ok()) << QueryToString(ctx, *q);
      ASSERT_TRUE(phys.ok()) << QueryToString(ctx, *q);
      ASSERT_EQ(*legacy, *phys)
          << QueryToString(ctx, *q) << "\nplan: "
          << AlgExprToString(ctx, t->plan);
      EXPECT_EQ(ls.tuples_scanned, ps.tuples_scanned)
          << QueryToString(ctx, *q);
      EXPECT_EQ(ls.tuples_produced, ps.tuples_produced)
          << QueryToString(ctx, *q);
      // The physical hash join short-circuits when either input is empty,
      // skipping key-expression evaluation the legacy interpreter still
      // performs — so it may make strictly fewer scalar function calls.
      EXPECT_LE(ps.function_calls, ls.function_calls)
          << QueryToString(ctx, *q);
      ++checked;
      // Oracle pass on a budgeted prefix: the calculus evaluator is
      // exponential in the variable count.
      if (oracle_checked < 80 && CountApplications(q->body) <= 4) {
        CalculusEvalOptions oracle_options;
        oracle_options.domain_budget = 3000;
        auto oracle = EvaluateCalculus(ctx, *q, db, registry, oracle_options);
        if (oracle.ok()) {
          ASSERT_EQ(*phys, *oracle) << QueryToString(ctx, *q);
          ++oracle_checked;
        }
      }
    }
  }
  EXPECT_EQ(checked, 500) << "generator exhausted before 500 queries";
  EXPECT_GT(oracle_checked, 20);
}

// The morsel-parallel operators must be bit-identical across thread
// counts: morsel boundaries depend only on (n, grain) and every parallel
// region renormalizes, so num_threads is purely a performance knob. The
// corpus databases are sized past the parallel threshold so the parallel
// paths actually execute (not just the sequential fallbacks).
TEST(ExecDeterminismTest, PaperCorpusIdenticalAcrossThreadCounts) {
  FunctionRegistry registry = CorpusFunctions();
  for (const CorpusQuery& cq : kPaperCorpus) {
    AstContext ctx;
    auto q = ParseQuery(ctx, cq.text);
    ASSERT_TRUE(q.ok()) << cq.text;
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok()) << cq.text;
    Database db;
    for (const auto& [name, arity] : cq.schema) {
      AddRandomTuples(db, name, arity, /*rows=*/6000, /*value_pool=*/100000,
                      /*seed=*/arity * 7 + 1);
    }
    auto legacy = EvaluateAlgebraLegacy(ctx, t->plan, db, registry);
    ASSERT_TRUE(legacy.ok()) << cq.text;
    AlgebraEvalOptions options;
    Relation sequential(t->plan->arity());
    // 0 = hardware concurrency; it must agree with every explicit count.
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{0}}) {
      options.num_threads = threads;
      auto phys = EvaluateAlgebra(ctx, t->plan, db, registry,
                                  /*stats=*/nullptr, options);
      ASSERT_TRUE(phys.ok()) << cq.text;
      if (threads == 1) {
        sequential = *std::move(phys);
        EXPECT_EQ(sequential, *legacy) << cq.text;
      } else {
        EXPECT_EQ(*phys, sequential)
            << cq.text << " differs at num_threads=" << threads;
        EXPECT_EQ(phys->ToString(), sequential.ToString()) << cq.text;
      }
    }
  }
}

// 200 seeded random em-allowed queries evaluated at 1 and 4 threads:
// answers must be identical to each other and to the legacy interpreter.
// (The databases here are small — this sweeps plan shapes through the
// threaded entry points; the corpus test above covers the actual parallel
// code paths on large inputs.)
TEST(ExecDeterminismTest, RandomQueriesIdenticalAcrossThreadCounts) {
  FunctionRegistry registry = CorpusFunctions();
  registry.Register("rf0", 1, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 17;
    return Value::Int((n + 1) % 7);
  });
  registry.Register("rf1", 2, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 3;
    int64_t m = a[1].is_int() ? a[1].AsInt() : 5;
    return Value::Int((n * 3 + m) % 7);
  });

  AlgebraEvalOptions one_thread;
  one_thread.num_threads = 1;
  AlgebraEvalOptions four_threads;
  four_threads.num_threads = 4;
  int checked = 0;
  for (uint64_t seed = 1000; checked < 200 && seed < 1100; ++seed) {
    AstContext ctx;
    RandomQueryGen gen(ctx, seed);
    for (int i = 0; i < 8 && checked < 200; ++i) {
      auto q = gen.NextEmAllowed();
      if (!q.has_value()) continue;
      auto t = TranslateQuery(ctx, *q);
      ASSERT_TRUE(t.ok()) << QueryToString(ctx, *q);
      Database db;
      const std::vector<int>& arities = gen.relation_arities();
      for (size_t r = 0; r < arities.size(); ++r) {
        AddRandomTuples(db, "R" + std::to_string(r), arities[r], /*rows=*/40,
                        /*value_pool=*/9, seed * 37 + r * 13 + i);
      }
      auto legacy = EvaluateAlgebraLegacy(ctx, t->plan, db, registry);
      auto seq = EvaluateAlgebra(ctx, t->plan, db, registry,
                                 /*stats=*/nullptr, one_thread);
      auto par = EvaluateAlgebra(ctx, t->plan, db, registry,
                                 /*stats=*/nullptr, four_threads);
      ASSERT_TRUE(legacy.ok()) << QueryToString(ctx, *q);
      ASSERT_TRUE(seq.ok()) << QueryToString(ctx, *q);
      ASSERT_TRUE(par.ok()) << QueryToString(ctx, *q);
      ASSERT_EQ(*seq, *par) << QueryToString(ctx, *q) << "\nplan: "
                            << AlgExprToString(ctx, t->plan);
      ASSERT_EQ(*seq, *legacy) << QueryToString(ctx, *q);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 200) << "generator exhausted before 200 queries";
}

// Per-operator statistics surface through RunWithProfile / ExplainAnalyze.
TEST(ExecProfileTest, CompiledQueryExposesOperatorStats) {
  Compiler compiler;
  Database db = MakePayrollInstance(200, 8, 3);
  auto q = compiler.Compile(
      "{e | exists d, s (EMP(e, d, s) and not exists b (BONUS(e, b)))}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  ExecProfile profile;
  auto answer = q->RunWithProfile(db, &profile);
  ASSERT_TRUE(answer.ok());
  ExecTotals totals = SumProfile(profile);
  EXPECT_GT(totals.rows_in, 0u);
  EXPECT_GT(totals.rows_out, 0u);

  auto rendered = q->ExplainAnalyze(db);
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered->find("rows_in="), std::string::npos) << *rendered;
  EXPECT_NE(rendered->find("rows_out="), std::string::npos) << *rendered;
  EXPECT_NE(rendered->find("time="), std::string::npos) << *rendered;
  EXPECT_NE(rendered->find("Scan(EMP)"), std::string::npos) << *rendered;
}

// Lowered plans are reusable: one plan, many databases, fresh stats each
// run (no state leaks across executions).
TEST(ExecProfileTest, PlansAreReusableAcrossDatabases) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x, y | R(x, y) and not S(y)}");
  ASSERT_TRUE(q.ok());
  auto t = TranslateQuery(ctx, *q);
  ASSERT_TRUE(t.ok());
  FunctionRegistry registry = BuiltinFunctions();
  auto physical = Lower(ctx, t->plan, registry);
  ASSERT_TRUE(physical.ok());
  for (uint64_t seed : {1u, 2u, 3u}) {
    Database db;
    AddRandomTuples(db, "R", 2, 20, 10, seed);
    AddRandomTuples(db, "S", 1, 5, 10, seed + 7);
    ExecProfile profile;
    auto phys = physical->ExecuteToRelation(db, &profile);
    auto legacy = EvaluateAlgebraLegacy(ctx, t->plan, db, registry);
    ASSERT_TRUE(phys.ok());
    ASSERT_TRUE(legacy.ok());
    EXPECT_EQ(*phys, *legacy);
    // Stats reflect exactly this run.
    EXPECT_EQ(profile.stats.invocations, 1u);
  }
}

}  // namespace
}  // namespace emcalc
