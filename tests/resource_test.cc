// Tests for memory accounting (MemoryAccountant / QueryMemory /
// MemoryScope), the per-query ResourceGovernor, estimate-vs-actual plan
// feedback, and the ExecProfile JSON round trip. The attribution tests run
// real allocations through FlatRelation and the thread pool, so this
// binary is part of the TSAN CI leg (EMCALC_HARDWARE_THREADS=4).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/algebra/ast.h"
#include "src/algebra/expr.h"
#include "src/base/thread_pool.h"
#include "src/core/compiler.h"
#include "src/core/workload.h"
#include "src/exec/feedback.h"
#include "src/exec/lower.h"
#include "src/exec/physical.h"
#include "src/obs/json.h"
#include "src/obs/query_log.h"
#include "src/obs/resource.h"
#include "src/obs/trace.h"
#include "src/storage/adom.h"
#include "src/storage/csv.h"
#include "src/storage/relation.h"

namespace emcalc {
namespace {

// ---- Accounting attribution --------------------------------------------

TEST(MemoryAccountingTest, ChargeBytesReachesProcessAccountant) {
  auto& acct = obs::MemoryAccountant::Instance();
  int64_t before_bytes = acct.bytes();
  uint64_t before_alloc = acct.bytes_allocated();
  obs::ChargeBytes(4096);
  EXPECT_EQ(acct.bytes(), before_bytes + 4096);
  EXPECT_EQ(acct.bytes_allocated(), before_alloc + 4096);
  EXPECT_GE(acct.peak_bytes(), before_bytes + 4096);
  obs::ChargeBytes(-4096);
  EXPECT_EQ(acct.bytes(), before_bytes);
  // Releases never count as allocation.
  EXPECT_EQ(acct.bytes_allocated(), before_alloc + 4096);
}

TEST(MemoryAccountingTest, ScopeAttributesToQueryAndOperator) {
  obs::QueryMemory qmem(2);
  {
    obs::MemoryScope op0(&qmem, 0);
    obs::ChargeBytes(100);
    {
      obs::MemoryScope op1(&qmem, 1);  // nested: shadows op0
      obs::ChargeBytes(300);
      obs::ChargeBytes(-300);
    }
    obs::ChargeBytes(-100);
  }
  obs::ChargeBytes(64);  // outside any scope: process accountant only
  obs::ChargeBytes(-64);
  EXPECT_EQ(qmem.bytes(), 0);
  EXPECT_EQ(qmem.bytes_allocated(), 400u);
  EXPECT_EQ(qmem.peak_bytes(), 400);  // 100 held while op1 charged 300
  EXPECT_EQ(qmem.OpBytesAllocated(0), 100u);
  EXPECT_EQ(qmem.OpBytesAllocated(1), 300u);
  EXPECT_EQ(qmem.OpPeakBytes(0), 100);
  EXPECT_EQ(qmem.OpPeakBytes(1), 300);
}

TEST(MemoryAccountingTest, FlatRelationChargesAndReleasesItsBuffers) {
  obs::QueryMemory qmem(1);
  auto& acct = obs::MemoryAccountant::Instance();
  int64_t process_before = acct.bytes();
  {
    obs::MemoryScope scope(&qmem, 0);
    Relation rel(2);
    Value row[2];
    for (int i = 0; i < 1000; ++i) {
      row[0] = Value::Int(i);
      row[1] = Value::Int(i + 1);
      rel.AppendRow(row);
    }
    EXPECT_GE(qmem.bytes(),
              static_cast<int64_t>(1000 * 2 * sizeof(Value)));
    // Moves transfer the charge with the storage: the live total is
    // unchanged and nothing double-releases at destruction.
    int64_t live = qmem.bytes();
    Relation moved(std::move(rel));
    EXPECT_EQ(qmem.bytes(), live);
  }
  EXPECT_EQ(qmem.bytes(), 0);
  EXPECT_EQ(acct.bytes(), process_before);
  EXPECT_GT(qmem.bytes_allocated(), 0u);
  EXPECT_EQ(qmem.OpBytesAllocated(0), qmem.bytes_allocated());
}

TEST(MemoryAccountingTest, ThreadPoolPropagatesScopeToWorkers) {
  obs::QueryMemory qmem(1);
  {
    obs::MemoryScope scope(&qmem, 0);
    ThreadPool pool(3);
    // Morsels run on pool workers; every charge must still attribute to
    // the scope captured by the caller that opened the region.
    pool.ParallelFor(64, 1, 4, [](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        obs::ChargeBytes(128);
        obs::ChargeBytes(-128);
      }
    });
  }
  EXPECT_EQ(qmem.bytes(), 0);
  EXPECT_EQ(qmem.bytes_allocated(), 64u * 128);
  EXPECT_EQ(qmem.OpBytesAllocated(0), 64u * 128);
}

// ---- Resource limits: parsing and the governor -------------------------

TEST(ResourceLimitsTest, EnvKnobsParseAndExplicitFieldsWin) {
  setenv("EMCALC_MAX_QUERY_BYTES", "12345", 1);
  setenv("EMCALC_MAX_QUERY_MS", "678", 1);
  obs::ResourceLimits env = obs::ResourceLimitsFromEnv();
  EXPECT_EQ(env.max_bytes, 12345u);
  EXPECT_EQ(env.max_wall_ms, 678u);

  obs::ResourceLimits opts;
  opts.max_bytes = 99;
  obs::ResourceLimits eff = obs::EffectiveLimits(opts);
  EXPECT_EQ(eff.max_bytes, 99u);      // explicit beats env
  EXPECT_EQ(eff.max_wall_ms, 678u);   // env fills the unset field

  unsetenv("EMCALC_MAX_QUERY_BYTES");
  unsetenv("EMCALC_MAX_QUERY_MS");
  env = obs::ResourceLimitsFromEnv();
  EXPECT_EQ(env.max_bytes, 0u);
  EXPECT_EQ(env.max_wall_ms, 0u);
}

TEST(ResourceGovernorTest, NoLimitsMeansDisabledAndFree) {
  obs::ResourceGovernor governor(obs::ResourceLimits{}, nullptr,
                                 obs::NowNs());
  EXPECT_FALSE(governor.enabled());
  governor.AddRows(1'000'000);
  EXPECT_FALSE(governor.Check());
  EXPECT_TRUE(governor.status().ok());
}

TEST(ResourceGovernorTest, RowLimitTripsAndNamesItself) {
  obs::ResourceLimits limits;
  limits.max_rows = 10;
  obs::ResourceGovernor governor(limits, nullptr, obs::NowNs());
  ASSERT_TRUE(governor.enabled());
  governor.AddRows(5);
  EXPECT_FALSE(governor.Check());
  governor.AddRows(6);
  EXPECT_TRUE(governor.Check());
  EXPECT_TRUE(governor.tripped());
  EXPECT_EQ(governor.tripped_limit(), obs::ResourceLimitKind::kRows);
  Status status = governor.status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // The limit name leads the message so log parsing can take the first
  // token.
  EXPECT_EQ(status.message().rfind("max_rows", 0), 0u);
}

TEST(ResourceGovernorTest, DeadlineTripsOncePassed) {
  obs::ResourceLimits limits;
  limits.max_wall_ms = 5;
  // Anchor the deadline 50ms in the past: already expired.
  obs::ResourceGovernor governor(limits, nullptr,
                                 obs::NowNs() - 50'000'000);
  EXPECT_TRUE(governor.Check());
  EXPECT_EQ(governor.tripped_limit(), obs::ResourceLimitKind::kDeadline);
  EXPECT_NE(governor.status().message().find("max_wall_ms"),
            std::string::npos);
}

TEST(ResourceGovernorTest, ClosureLimitTripsThroughCheckClosure) {
  obs::ResourceLimits limits;
  limits.max_term_closure_size = 100;
  obs::ResourceGovernor governor(limits, nullptr, obs::NowNs());
  EXPECT_TRUE(governor.CheckClosure(50).ok());
  Status status = governor.CheckClosure(1000);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message().rfind("max_term_closure_size", 0), 0u);
}

TEST(ResourceGovernorTest, FirstTripWinsAndIsSticky) {
  obs::ResourceLimits limits;
  limits.max_rows = 10;
  limits.max_term_closure_size = 10;
  obs::ResourceGovernor governor(limits, nullptr, obs::NowNs());
  governor.AddRows(100);
  EXPECT_TRUE(governor.Check());
  ASSERT_EQ(governor.tripped_limit(), obs::ResourceLimitKind::kRows);
  // A later violation of a different limit does not rewrite the verdict.
  EXPECT_FALSE(governor.CheckClosure(1000).ok());
  EXPECT_EQ(governor.tripped_limit(), obs::ResourceLimitKind::kRows);
  EXPECT_EQ(governor.status().message().rfind("max_rows", 0), 0u);
}

TEST(ResourceGovernorTest, TermClosureHonorsGovernor) {
  FunctionRegistry registry = BuiltinFunctions();
  ValueSet base;
  for (int i = 0; i < 10; ++i) base.push_back(Value::Int(i));
  obs::ResourceLimits limits;
  limits.max_term_closure_size = 5;
  obs::ResourceGovernor governor(limits, nullptr, obs::NowNs());
  auto closure = TermClosure(base, {{"succ", 1}}, registry, /*level=*/3,
                             /*max_size=*/1'000'000, /*num_threads=*/1,
                             &governor);
  ASSERT_FALSE(closure.ok());
  EXPECT_EQ(closure.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(closure.status().message().find("max_term_closure_size"),
            std::string::npos);
}

// ---- End-to-end: governed executions -----------------------------------

Database JoinInstance(size_t rows) {
  Database db;
  AddRandomTuples(db, "R", 2, rows, /*value_pool=*/5000, /*seed=*/11, 0.0);
  AddRandomTuples(db, "S", 2, rows, /*value_pool=*/5000, /*seed=*/23, 0.0);
  return db;
}

const AlgExpr* JoinPlan(AstContext& ctx, AlgebraFactory& factory) {
  ExprFactory e(ctx);
  return factory.Join({{e.Col(1), AlgCompareOp::kEq, e.Col(2)}},
                      factory.Rel("R", 2), factory.Rel("S", 2));
}

TEST(GovernedExecutionTest, ByteLimitAbortsNamedAndProcessStaysUsable) {
  FunctionRegistry registry = BuiltinFunctions();
  Database db = JoinInstance(20'000);
  AstContext ctx;
  AlgebraFactory factory(ctx);
  const AlgExpr* plan = JoinPlan(ctx, factory);

  ExecOptions limited;
  limited.limits.max_bytes = 64 * 1024;  // far below the join's working set
  auto governed = Lower(ctx, plan, registry, limited);
  ASSERT_TRUE(governed.ok());
  ExecProfile profile;
  auto aborted = governed->ExecuteToRelation(db, &profile);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(aborted.status().message().find("max_bytes"),
            std::string::npos);
  // The partial profile still reports what ran before the abort.
  EXPECT_GT(profile.total_bytes_allocated, 0u);

  // The abort is per-query: the same plan shape executes cleanly and
  // deterministically afterwards.
  auto unlimited = Lower(ctx, plan, registry, ExecOptions{});
  ASSERT_TRUE(unlimited.ok());
  auto first = unlimited->ExecuteToRelation(db);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = unlimited->ExecuteToRelation(db);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->size(), second->size());
  EXPECT_GT(first->size(), 0u);
}

TEST(GovernedExecutionTest, RowLimitAbortsScanHeavyQuery) {
  FunctionRegistry registry = BuiltinFunctions();
  Database db = JoinInstance(20'000);
  AstContext ctx;
  AlgebraFactory factory(ctx);
  ExprFactory e(ctx);
  const AlgExpr* plan =
      factory.Select({{e.Col(0), AlgCompareOp::kLt, e.Col(1)}},
                     factory.Rel("R", 2));
  ExecOptions options;
  options.limits.max_rows = 100;
  auto lowered = Lower(ctx, plan, registry, options);
  ASSERT_TRUE(lowered.ok());
  auto result = lowered->ExecuteToRelation(db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("max_rows"), std::string::npos);
}

TEST(GovernedExecutionTest, EnvByteLimitGovernsCompiledQueries) {
  Compiler compiler;
  Database db;
  std::string csv;
  for (int i = 0; i < 500; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i + 1) + "\n";
  }
  ASSERT_TRUE(LoadCsvText(db, "EDGE", csv).ok());
  auto q = compiler.Compile("{x | exists y (EDGE(x, y))}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  setenv("EMCALC_MAX_QUERY_BYTES", "1", 1);
  auto aborted = q->Run(db);
  unsetenv("EMCALC_MAX_QUERY_BYTES");
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(aborted.status().message().find("max_bytes"),
            std::string::npos);

  auto ok = q->Run(db);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->size(), 500u);
}

// ---- Profiles: memory columns, JSON round trip, feedback ---------------

TEST(ExecProfileTest, CarriesEstimatesAndMemoryPerOperator) {
  FunctionRegistry registry = BuiltinFunctions();
  Database db = JoinInstance(5'000);
  AstContext ctx;
  AlgebraFactory factory(ctx);
  const AlgExpr* plan = JoinPlan(ctx, factory);
  auto lowered = Lower(ctx, plan, registry, ExecOptions{});
  ASSERT_TRUE(lowered.ok());
  ExecProfile profile;
  auto result = lowered->ExecuteToRelation(db, &profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Root: the HashJoin. Estimates are filled for every operator, memory
  // totals only at the root.
  EXPECT_EQ(profile.op, PhysOpKind::kHashJoin);
  EXPECT_GE(profile.stats.est_rows, 0.0);
  EXPECT_GT(profile.total_bytes_allocated, 0u);
  EXPECT_GT(profile.total_peak_bytes, 0);
  EXPECT_GT(profile.stats.bytes_allocated, 0u);  // join output + scratch
  ASSERT_EQ(profile.children.size(), 2u);
  for (const ExecProfile& child : profile.children) {
    EXPECT_EQ(child.op, PhysOpKind::kScan);
    EXPECT_GE(child.stats.est_rows, 0.0);
  }
  // Per-operator allocation attributes within the query total.
  uint64_t op_sum = profile.stats.bytes_allocated;
  for (const ExecProfile& child : profile.children) {
    op_sum += child.stats.bytes_allocated;
  }
  EXPECT_LE(op_sum, profile.total_bytes_allocated);

  std::string rendered = ExecProfileToString(profile);
  EXPECT_NE(rendered.find("est_rows="), std::string::npos);
  EXPECT_NE(rendered.find("peak_bytes="), std::string::npos);
}

// Batch-kernel scratch (register file, selection vectors, order keys) is
// charged to the owning operator's memory slot: the ProjectMap's slot
// grows versus the tuple path, while the fused FilterSelect — which no
// longer materializes its output — shrinks.
TEST(ExecProfileTest, BatchScratchChargesOwningOperator) {
  FunctionRegistry registry = BuiltinFunctions();
  AstContext ctx;
  AlgebraFactory factory(ctx);
  ExprFactory& e = factory.exprs();
  Database db;
  ASSERT_TRUE(db.AddRelation("R", 2).ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(db.Insert("R", {Value::Int(i), Value::Int(i % 97)}).ok());
  }
  Symbol plus = ctx.symbols().Intern("plus");
  const AlgExpr* plan = factory.Project(
      {e.Apply(plus, std::vector<const ScalarExpr*>{e.Col(0), e.Col(1)})},
      factory.Select({{e.Col(1), AlgCompareOp::kLt, e.Col(0)}},
                     factory.Rel("R", 2)));

  auto run = [&](size_t batch_size) {
    ExecOptions opts;
    opts.batch_size = batch_size;
    opts.num_threads = 1;
    auto lowered = Lower(ctx, plan, registry, opts);
    EXPECT_TRUE(lowered.ok());
    ExecProfile profile;
    auto result = lowered->ExecuteToRelation(db, &profile);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return profile;
  };

  ExecProfile tuple = run(1);
  ExecProfile batch = run(1024);
  ASSERT_EQ(batch.op, PhysOpKind::kProjectMap);
  ASSERT_EQ(batch.children.size(), 1u);
  ASSERT_EQ(batch.children[0].op, PhysOpKind::kFilterSelect);
  // Both programs run inside the ProjectMap's frame, so their scratch
  // lands on its slot on top of the output buffer the tuple path also
  // pays for.
  EXPECT_GT(batch.stats.bytes_allocated, tuple.stats.bytes_allocated);
  EXPECT_GT(batch.stats.peak_bytes, 0);
  // The fused filter passes a selection vector instead of copying rows,
  // so its own slot charges strictly less than the materializing path.
  EXPECT_LT(batch.children[0].stats.bytes_allocated,
            tuple.children[0].stats.bytes_allocated);
  // Operator slots still attribute within the query total.
  EXPECT_LE(batch.stats.bytes_allocated + batch.children[0].stats.bytes_allocated,
            batch.total_bytes_allocated);
}

TEST(ExecProfileTest, JsonRoundTripIsExact) {
  FunctionRegistry registry = BuiltinFunctions();
  Database db = JoinInstance(2'000);
  AstContext ctx;
  AlgebraFactory factory(ctx);
  const AlgExpr* plan = JoinPlan(ctx, factory);
  auto lowered = Lower(ctx, plan, registry, ExecOptions{});
  ASSERT_TRUE(lowered.ok());
  ExecProfile profile;
  ASSERT_TRUE(lowered->ExecuteToRelation(db, &profile).ok());

  std::string json = ExecProfileToJson(profile);
  auto parsed = ExecProfileFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  EXPECT_EQ(parsed->op, profile.op);
  EXPECT_EQ(parsed->children.size(), profile.children.size());
  EXPECT_EQ(parsed->stats.rows_out, profile.stats.rows_out);
  EXPECT_EQ(parsed->stats.est_rows, profile.stats.est_rows);
  EXPECT_EQ(parsed->stats.peak_bytes, profile.stats.peak_bytes);
  EXPECT_EQ(parsed->total_peak_bytes, profile.total_peak_bytes);
  EXPECT_EQ(parsed->total_bytes_allocated, profile.total_bytes_allocated);
  // Byte-exact round trip: re-serializing reproduces the document.
  EXPECT_EQ(ExecProfileToJson(*parsed), json);
}

// Recursively sums the par_* contention fields over a profile tree.
void SumParFields(const ExecProfile& p, uint64_t* morsels, uint64_t* wall) {
  *morsels += p.stats.par_morsels;
  *wall += p.stats.par_wall_ns;
  for (const ExecProfile& c : p.children) SumParFields(c, morsels, wall);
}

TEST(ExecProfileTest, ParallelRegionsFillContentionTelemetry) {
  FunctionRegistry registry = BuiltinFunctions();
  Database db = JoinInstance(20'000);
  AstContext ctx;
  AlgebraFactory factory(ctx);
  const AlgExpr* plan = JoinPlan(ctx, factory);
  ExecOptions options;
  options.num_threads = 4;  // both inputs clear the parallel threshold
  auto lowered = Lower(ctx, plan, registry, options);
  ASSERT_TRUE(lowered.ok());
  ExecProfile profile;
  auto result = lowered->ExecuteToRelation(db, &profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  uint64_t morsels = 0;
  uint64_t wall = 0;
  SumParFields(profile, &morsels, &wall);
  EXPECT_GT(morsels, 0u);
  EXPECT_GT(wall, 0u);

  // The par_* fields survive the JSON round trip byte-exactly.
  std::string json = ExecProfileToJson(profile);
  auto parsed = ExecProfileFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(ExecProfileToJson(*parsed), json);
  EXPECT_EQ(parsed->stats.par_morsels, profile.stats.par_morsels);
  EXPECT_EQ(parsed->stats.par_workers, profile.stats.par_workers);
}

TEST(ExecProfileTest, ParallelSummaryAggregatesAndClampsEfficiency) {
  ExecProfile leaf;
  leaf.op = PhysOpKind::kFilterSelect;
  leaf.stats.par_wall_ns = 100;
  leaf.stats.par_busy_ns = 150;
  leaf.stats.par_morsels = 8;
  leaf.stats.par_workers = 2;

  ExecProfile inline_op;  // ran inline; must not dilute the summary
  inline_op.op = PhysOpKind::kScan;
  inline_op.stats.par_wall_ns = 500;
  inline_op.stats.par_workers = 1;

  ExecProfile root;
  root.op = PhysOpKind::kHashJoin;
  root.stats.par_wall_ns = 200;
  root.stats.par_busy_ns = 600;
  root.stats.par_morsels = 16;
  root.stats.par_workers = 4;
  root.children.push_back(leaf);
  root.children.push_back(inline_op);

  ParallelSummary par = SumParallel(root);
  EXPECT_EQ(par.morsels, 24u);
  EXPECT_EQ(par.max_workers, 4u);
  EXPECT_EQ(par.busy_ns, 750u);
  // weighted wall = 100*2 + 200*4; the inline op contributes nothing.
  EXPECT_EQ(par.weighted_wall_ns, 1000u);
  EXPECT_DOUBLE_EQ(par.Efficiency(), 0.75);

  // Busy exceeding the weighted wall (timer skew) clamps to 1.
  root.stats.par_busy_ns = 10'000;
  EXPECT_DOUBLE_EQ(SumParallel(root).Efficiency(), 1.0);

  EXPECT_DOUBLE_EQ(ParallelSummary{}.Efficiency(), 0.0);
}

TEST(PlanFeedbackTest, RanksOperatorsByMisestimationFactor) {
  ExecProfile scan;
  scan.op = PhysOpKind::kScan;
  scan.detail = "R";
  scan.stats.est_rows = 500;
  scan.stats.rows_out = 500;

  ExecProfile join;
  join.op = PhysOpKind::kHashJoin;
  join.stats.est_rows = 10;
  join.stats.rows_out = 1000;
  join.children.push_back(scan);

  PlanFeedback feedback = BuildPlanFeedback(join);
  ASSERT_EQ(feedback.entries.size(), 2u);
  EXPECT_EQ(feedback.entries[0].op, "HashJoin");
  EXPECT_DOUBLE_EQ(feedback.entries[0].factor, 100.0);
  EXPECT_TRUE(feedback.entries[0].underestimate);
  EXPECT_EQ(feedback.entries[1].op, "Scan(R)");
  EXPECT_DOUBLE_EQ(feedback.entries[1].factor, 1.0);
  EXPECT_DOUBLE_EQ(feedback.max_factor, 100.0);
  EXPECT_EQ(feedback.worst_op, "HashJoin");

  std::string text = feedback.ToString();
  EXPECT_NE(text.find("HashJoin: est 10 actual 1000"), std::string::npos);
  EXPECT_NE(text.find("(100.0x under)"), std::string::npos);
  EXPECT_NE(text.find("Scan(R): est 500 actual 500 (exact)"),
            std::string::npos);

  auto json = obs::ParseJson(feedback.ToJson());
  ASSERT_TRUE(json.ok()) << feedback.ToJson();
  EXPECT_EQ(json->StringOr("worst_op", ""), "HashJoin");
  EXPECT_DOUBLE_EQ(json->NumberOr("max_factor", 0), 100.0);
}

TEST(PlanFeedbackTest, ExplainAnalyzeShowsMemoryAndFeedback) {
  Compiler compiler;
  Database db;
  ASSERT_TRUE(LoadCsvText(db, "EDGE", "1,2\n2,3\n3,1\n").ok());
  auto q = compiler.Compile("{x | exists y (EDGE(x, y))}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto report = q->ExplainAnalyze(db);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("est_rows="), std::string::npos) << *report;
  EXPECT_NE(report->find("peak_bytes="), std::string::npos) << *report;
  EXPECT_NE(report->find("memory: peak "), std::string::npos) << *report;
  EXPECT_NE(report->find("feedback (est vs actual, worst first):"),
            std::string::npos)
      << *report;
}

// ---- Query log integration ---------------------------------------------

// Installs a string-backed query log for the test's scope.
class ScopedQueryLog {
 public:
  ScopedQueryLog() : log_(&buffer_), saved_(obs::GetQueryLog()) {
    obs::SetQueryLog(&log_);
  }
  ~ScopedQueryLog() { obs::SetQueryLog(saved_); }

  std::vector<obs::QueryLogRecord> RunRecords() {
    std::vector<obs::QueryLogRecord> out;
    std::istringstream lines(buffer_.str());
    std::string line;
    while (std::getline(lines, line)) {
      auto record = obs::ParseQueryLogRecord(line);
      if (record.ok() && record->event == "run") {
        out.push_back(std::move(record).value());
      }
    }
    return out;
  }

 private:
  std::ostringstream buffer_;
  obs::QueryLog log_;
  obs::QueryLog* saved_;
};

TEST(QueryLogResourceTest, RunRecordsCarryMemoryAndAbortFields) {
  Compiler compiler;
  Database db;
  std::string csv;
  for (int i = 0; i < 500; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i % 7) + "\n";
  }
  ASSERT_TRUE(LoadCsvText(db, "EDGE", csv).ok());
  auto q = compiler.Compile("{x | exists y (EDGE(x, y))}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  ScopedQueryLog log;
  ASSERT_TRUE(q->Run(db).ok());
  setenv("EMCALC_MAX_QUERY_BYTES", "1", 1);
  auto aborted = q->Run(db);
  unsetenv("EMCALC_MAX_QUERY_BYTES");
  ASSERT_FALSE(aborted.ok());

  std::vector<obs::QueryLogRecord> runs = log.RunRecords();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_TRUE(runs[0].ok);
  EXPECT_GT(runs[0].peak_bytes, 0u);
  EXPECT_GT(runs[0].bytes_allocated, 0u);
  EXPECT_TRUE(runs[0].aborted_limit.empty());
  EXPECT_GE(runs[0].misestimate_factor, 1.0);
  EXPECT_FALSE(runs[0].misestimate_op.empty());

  EXPECT_FALSE(runs[1].ok);
  EXPECT_EQ(runs[1].aborted_limit, "max_bytes");
}

}  // namespace
}  // namespace emcalc
