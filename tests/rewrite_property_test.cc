// Property tests for the formula rewrites: every pass (pushnot/NNF,
// simplify, rectify, forall-elimination, ENF, disjunction distribution)
// must preserve embedded semantics on random formulas, verified against
// the reference evaluator; plus structural invariants (idempotence,
// variable preservation) and bd-option consistency.
#include <gtest/gtest.h>

#include "src/calculus/analysis.h"
#include "src/calculus/printer.h"
#include "src/calculus/rewrite.h"
#include "src/core/random_query.h"
#include "src/core/workload.h"
#include "src/eval/calculus_eval.h"
#include "src/finds/bound.h"
#include "src/safety/pushnot.h"
#include "src/safety/simplify.h"
#include "src/translate/distribute.h"
#include "src/translate/enf.h"

namespace emcalc {
namespace {

FunctionRegistry CompactFunctions() {
  FunctionRegistry reg;
  reg.Register("rf0", 1, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 17;
    return Value::Int((n + 2) % 5);
  });
  reg.Register("rf1", 2, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 3;
    int64_t m = a[1].is_int() ? a[1].AsInt() : 1;
    return Value::Int((n + 2 * m) % 5);
  });
  return reg;
}

Database SmallInstance(const std::vector<int>& arities, uint64_t seed) {
  Database db;
  for (size_t i = 0; i < arities.size(); ++i) {
    AddRandomTuples(db, "R" + std::to_string(i), arities[i], 4,
                    /*value_pool=*/5, seed + i * 13);
  }
  return db;
}

class RewritePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Checks that `rewritten` computes the same answers as the original on a
  // random instance (embedded semantics at a level covering both).
  void ExpectEquivalent(AstContext& ctx, const Query& q,
                        const Formula* rewritten, const char* pass,
                        const std::vector<int>& arities, uint64_t seed) {
    FunctionRegistry registry = CompactFunctions();
    Database db = SmallInstance(arities, seed);
    CalculusEvalOptions options;
    options.level =
        std::max(CountApplications(q.body), CountApplications(rewritten));
    options.domain_budget = 4000;
    auto a = EvaluateCalculus(ctx, q, db, registry, options);
    if (!a.ok()) return;  // domain blew the budget: skip sample
    Query q2{q.head, rewritten};
    auto b = EvaluateCalculus(ctx, q2, db, registry, options);
    ASSERT_TRUE(b.ok()) << pass << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << pass << " changed the meaning of "
                      << QueryToString(ctx, q) << "\nrewritten: "
                      << FormulaToString(ctx, rewritten);
  }
};

TEST_P(RewritePropertyTest, NnfPreservesSemantics) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() * 31 + 1);
  for (int i = 0; i < 12; ++i) {
    Query q = gen.Next();
    if (CountApplications(q.body) > 3) continue;
    const Formula* nnf = NegationNormalForm(ctx, q.body);
    ExpectEquivalent(ctx, q, nnf, "NNF", gen.relation_arities(),
                     GetParam() * 7 + i);
  }
}

TEST_P(RewritePropertyTest, SimplifyPreservesSemanticsAndIsIdempotent) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() * 31 + 2);
  for (int i = 0; i < 12; ++i) {
    Query q = gen.Next();
    if (CountApplications(q.body) > 3) continue;
    const Formula* s = Simplify(ctx, q.body);
    EXPECT_TRUE(IsSimplified(s)) << FormulaToString(ctx, s);
    EXPECT_EQ(Simplify(ctx, s), s);
    // Simplification may drop vacuous quantifiers but never frees/binds
    // head variables differently.
    EXPECT_TRUE(FreeVars(s).IsSubsetOf(FreeVars(q.body)));
    if (FreeVars(s) != FreeVars(q.body)) continue;  // head would mismatch
    ExpectEquivalent(ctx, q, s, "Simplify", gen.relation_arities(),
                     GetParam() * 7 + i);
  }
}

TEST_P(RewritePropertyTest, RectifyPreservesSemantics) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() * 31 + 3);
  for (int i = 0; i < 12; ++i) {
    Query q = gen.Next();
    if (CountApplications(q.body) > 3) continue;
    const Formula* r = Rectify(ctx, q.body);
    EXPECT_EQ(FreeVars(r), FreeVars(q.body));
    ExpectEquivalent(ctx, q, r, "Rectify", gen.relation_arities(),
                     GetParam() * 7 + i);
  }
}

TEST_P(RewritePropertyTest, ForallEliminationPreservesSemantics) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() * 31 + 4);
  for (int i = 0; i < 12; ++i) {
    Query q = gen.Next();
    if (CountApplications(q.body) > 3) continue;
    const Formula* g = EliminateForall(ctx, q.body);
    ExpectEquivalent(ctx, q, g, "EliminateForall", gen.relation_arities(),
                     GetParam() * 7 + i);
  }
}

TEST_P(RewritePropertyTest, EnfPreservesSemanticsAndForm) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() * 31 + 5);
  for (int i = 0; i < 12; ++i) {
    Query q = gen.Next();
    if (CountApplications(q.body) > 3) continue;
    const Formula* enf = ToEnf(ctx, q.body);
    EXPECT_TRUE(IsEnf(enf)) << FormulaToString(ctx, enf);
    if (FreeVars(enf) != FreeVars(q.body)) continue;  // simplified away
    ExpectEquivalent(ctx, q, enf, "ENF", gen.relation_arities(),
                     GetParam() * 7 + i);
  }
}

TEST_P(RewritePropertyTest, DistributionPreservesSemantics) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() * 31 + 6);
  for (int i = 0; i < 12; ++i) {
    Query q = gen.Next();
    if (CountApplications(q.body) > 3) continue;
    const Formula* enf = ToEnf(ctx, q.body);
    const Formula* dist = DistributeDisjunctions(ctx, enf);
    if (FreeVars(dist) != FreeVars(q.body)) continue;
    ExpectEquivalent(ctx, q, dist, "Distribute", gen.relation_arities(),
                     GetParam() * 7 + i);
  }
}

TEST_P(RewritePropertyTest, BdExactModeIsConsistent) {
  // The exact (exponential) meet/projection must entail everything the
  // heuristic produces — the heuristic is a sound under-approximation.
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() * 31 + 7);
  for (int i = 0; i < 12; ++i) {
    Query q = gen.Next();
    BoundOptions heuristic;
    BoundOptions exact;
    exact.exact_max_vars = 10;
    FinDSet h = BoundingFinDs(ctx, q.body, heuristic);
    FinDSet e = BoundingFinDs(ctx, q.body, exact);
    EXPECT_TRUE(e.EntailsAll(h))
        << QueryToString(ctx, q) << "\nheuristic "
        << h.ToString(ctx.symbols()) << "\nexact " << e.ToString(ctx.symbols());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePropertyTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace emcalc
