// Targeted tests for (a) the printer/parser precedence contract across
// systematically nested connectives, and (b) the exact conjunct orderings
// the RANF pass produces (the T15/T16 grouping discipline).
#include <gtest/gtest.h>

#include <string>

#include "src/base/symbol_set.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/translate/enf.h"
#include "src/translate/ranf.h"

namespace emcalc {
namespace {

class PrecedenceTest : public ::testing::Test {
 protected:
  // Parses, prints, reparses, and checks both parses agree and the second
  // print is a fixpoint.
  void CheckStable(const std::string& text) {
    AstContext ctx;
    auto f1 = ParseFormula(ctx, text);
    ASSERT_TRUE(f1.ok()) << text << ": " << f1.status().ToString();
    std::string printed = FormulaToString(ctx, *f1);
    auto f2 = ParseFormula(ctx, printed);
    ASSERT_TRUE(f2.ok()) << printed;
    EXPECT_TRUE(FormulasEqual(*f1, *f2)) << text << " -> " << printed;
    EXPECT_EQ(printed, FormulaToString(ctx, *f2));
  }
};

TEST_F(PrecedenceTest, SystematicTwoOperatorNesting) {
  // Every ordered pair of binary/unary operators around atoms.
  const char* atoms[] = {"A(x)", "B(x)", "C(x)"};
  const char* shapes[] = {
      "%1 and %2 or %3",        "%1 or %2 and %3",
      "(%1 or %2) and %3",      "%1 and (%2 or %3)",
      "not %1 and %2",          "not (%1 and %2)",
      "not %1 or not %2",       "not (%1 or %2) and %3",
      "not not %1 or %2",       "%1 and %2 and %3",
      "%1 or %2 or %3",         "not (%1 and (%2 or %3))",
  };
  for (const char* shape : shapes) {
    std::string text = shape;
    auto replace = [&text](const std::string& from, const std::string& to) {
      size_t pos;
      while ((pos = text.find(from)) != std::string::npos) {
        text.replace(pos, from.size(), to);
      }
    };
    replace("%1", atoms[0]);
    replace("%2", atoms[1]);
    replace("%3", atoms[2]);
    CheckStable(text);
  }
}

TEST_F(PrecedenceTest, QuantifierAndComparatorNesting) {
  const char* cases[] = {
      "exists x (A(x)) and B(y)",
      "not exists x (A(x) or B(x))",
      "forall x (exists y (A(x) and x != y))",
      "exists x, y (A(x) and f(x) = y or B(y))",
      "A(x) and x < 3 or B(x) and 3 <= x",
      "not (x < y) and A(x, y)",
  };
  for (const char* text : cases) CheckStable(text);
}

TEST_F(PrecedenceTest, AndOrMixedPrinting) {
  AstContext ctx;
  // or of ands prints without parens; and of ors needs them.
  auto f = ParseFormula(ctx, "(A(x) or B(x)) and (C(x) or D(x))");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(FormulaToString(ctx, *f),
            "(A(x) or B(x)) and (C(x) or D(x))");
  auto g = ParseFormula(ctx, "A(x) and B(x) or C(x) and D(x)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(FormulaToString(ctx, *g), "A(x) and B(x) or C(x) and D(x)");
}

class RanfOrderingTest : public ::testing::Test {
 protected:
  // Translates to RANF and returns the top-level conjunct printout.
  std::vector<std::string> Order(const char* text) {
    auto f = ParseFormula(ctx_, text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    auto ranf = ToRanf(ctx_, ToEnf(ctx_, *f), SymbolSet{});
    EXPECT_TRUE(ranf.ok()) << text << ": " << ranf.status().ToString();
    std::vector<std::string> out;
    if (!ranf.ok()) return out;
    if ((*ranf)->kind() != FormulaKind::kAnd) {
      out.push_back(FormulaToString(ctx_, *ranf));
      return out;
    }
    for (const Formula* c : (*ranf)->children()) {
      out.push_back(FormulaToString(ctx_, c));
    }
    return out;
  }
  AstContext ctx_;
};

TEST_F(RanfOrderingTest, NegationsSinkBelowTheirBounders) {
  auto order = Order("not S(y) and not T(x) and f(x) = y and R(x)");
  ASSERT_EQ(order.size(), 4u);
  // R(x) must come first (only source of x); then in original order: the
  // negation of T (x now bound), the binding f(x)=y, and finally not S(y).
  EXPECT_EQ(order[0], "R(x)");
  EXPECT_EQ(order[1], "not T(x)");
  EXPECT_EQ(order[2], "f(x) = y");
  EXPECT_EQ(order[3], "not S(y)");
}

TEST_F(RanfOrderingTest, EqualityChainsOrderByDependency) {
  auto order = Order("g(y) = z and f(x) = y and R(x)");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "R(x)");
  EXPECT_EQ(order[1], "f(x) = y");
  EXPECT_EQ(order[2], "g(y) = z");
}

TEST_F(RanfOrderingTest, StablePrefixKeepsInputOrder) {
  // When several conjuncts are simultaneously translatable, input order is
  // preserved (determinism).
  auto order = Order("R(x) and S(y) and T(z)");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "R(x)");
  EXPECT_EQ(order[1], "S(y)");
  EXPECT_EQ(order[2], "T(z)");
}

TEST_F(RanfOrderingTest, InequalitiesWaitForBothSides) {
  auto order = Order("x != y and S(y) and R(x)");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "S(y)");
  EXPECT_EQ(order[1], "R(x)");
  EXPECT_EQ(order[2], "x != y");
}

TEST_F(RanfOrderingTest, T16FlatteningIntroducesFreshExistential) {
  // Mutually dependent atom/equality: must come back wrapped in an
  // existential over the flattening variable.
  auto f = ParseFormula(ctx_, "T3(z, x, f(z, y)) and g(z) = y and B(x)");
  ASSERT_TRUE(f.ok());
  auto ranf = ToRanf(ctx_, ToEnf(ctx_, *f), SymbolSet{});
  ASSERT_TRUE(ranf.ok()) << ranf.status().ToString();
  EXPECT_EQ((*ranf)->kind(), FormulaKind::kExists);
  EXPECT_TRUE(IsRanf(*ranf, SymbolSet{}));
}

}  // namespace
}  // namespace emcalc
