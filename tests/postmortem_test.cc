// Tests for the flight recorder (src/obs/flight_recorder.h) and the
// postmortem bundle writer (src/obs/postmortem.h): ring wraparound,
// concurrent writers on the thread pool, JSON round trips through the
// inspect library, and the end-to-end governor-abort bundle.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/core/compiler.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/inspect.h"
#include "src/obs/json.h"
#include "src/obs/postmortem.h"
#include "src/obs/query_log.h"
#include "src/storage/csv.h"

namespace emcalc {
namespace {

// A fresh directory under the test tmpdir; removed at scope exit.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) {
    path_ = ::testing::TempDir() + "emcalc_" + tag + "_" +
            std::to_string(::getpid());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Enables bundle writing for the test's scope; restores the previous dir.
class ScopedPostmortemDir {
 public:
  explicit ScopedPostmortemDir(const std::string& dir)
      : saved_(obs::PostmortemDir()) {
    obs::SetPostmortemDir(dir);
  }
  ~ScopedPostmortemDir() { obs::SetPostmortemDir(saved_); }

 private:
  std::string saved_;
};

std::vector<obs::FlightEvent> EventsNamed(const char* name) {
  std::vector<obs::FlightEvent> out;
  for (const obs::FlightEvent& e : obs::DrainFlightRecorder()) {
    if (e.name != nullptr && std::string(e.name) == name) out.push_back(e);
  }
  return out;
}

TEST(FlightRecorderTest, WraparoundKeepsNewestEvents) {
  obs::ResetFlightRingForTesting(64);
  for (uint64_t i = 0; i < 200; ++i) {
    obs::FlightRecord(obs::FlightEventKind::kMark, "wrap.test", i);
  }
  std::vector<obs::FlightEvent> events = EventsNamed("wrap.test");
  ASSERT_EQ(events.size(), 64u);
  // The ring holds exactly the newest 64 args: 136..199, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 200 - 64 + i);
  }
  obs::ResetFlightRingForTesting(obs::FlightRingCapacity());
}

TEST(FlightRecorderTest, DisableDropsEventsReEnableRecords) {
  obs::ResetFlightRingForTesting(64);
  obs::SetFlightRecorderEnabled(false);
  obs::FlightRecord(obs::FlightEventKind::kMark, "toggle.test", 1);
  EXPECT_TRUE(EventsNamed("toggle.test").empty());
  obs::SetFlightRecorderEnabled(true);
  obs::FlightRecord(obs::FlightEventKind::kMark, "toggle.test", 2);
  std::vector<obs::FlightEvent> events = EventsNamed("toggle.test");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].arg, 2u);
  obs::ResetFlightRingForTesting(obs::FlightRingCapacity());
}

TEST(FlightRecorderTest, ConcurrentWritersOnPoolLoseNothing) {
  obs::ResetFlightRingForTesting(8192);
  constexpr size_t kEvents = 1000;
  // Each pool worker records into its own ring; small morsels force the
  // region to actually fan out.
  ThreadPool::Global().ParallelFor(
      kEvents, /*grain=*/16, /*max_workers=*/4,
      [](size_t /*worker*/, size_t begin, size_t end) {
        for (size_t t = begin; t < end; ++t) {
          obs::FlightRecord(obs::FlightEventKind::kMark, "pool.mark", t);
        }
      });
  std::vector<obs::FlightEvent> events = EventsNamed("pool.mark");
  std::set<uint64_t> args;
  for (const obs::FlightEvent& e : events) args.insert(e.arg);
  EXPECT_EQ(args.size(), kEvents);
  EXPECT_EQ(*args.begin(), 0u);
  EXPECT_EQ(*args.rbegin(), kEvents - 1);
  // The merged drain is globally ordered by timestamp.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST(FlightRecorderTest, EventsJsonParsesWithAllFields) {
  obs::ResetFlightRingForTesting(64);
  obs::FlightRecord(obs::FlightEventKind::kMark, "json.test", 42);
  std::string json = obs::FlightEventsToJson(obs::DrainFlightRecorder());
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << json;
  ASSERT_TRUE(doc->is_array());
  bool found = false;
  for (const obs::JsonValue& e : doc->array) {
    if (e.StringOr("name", "") != "json.test") continue;
    found = true;
    EXPECT_EQ(e.StringOr("kind", ""), "mark");
    EXPECT_EQ(e.NumberOr("arg", 0), 42);
    EXPECT_GT(e.NumberOr("ts_ns", 0), 0);
    EXPECT_GT(e.NumberOr("tid", 0), 0);
  }
  EXPECT_TRUE(found) << json;
  obs::ResetFlightRingForTesting(obs::FlightRingCapacity());
}

TEST(FlightRecorderTest, SignalSafeDumpIsParseableJson) {
  obs::ResetFlightRingForTesting(64);
  obs::FlightRecord(obs::FlightEventKind::kMark, "dump.test", 7);
  ScopedTempDir dir("ringdump");
  std::string path = dir.path() + "/rings.json";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  obs::DumpFlightRingsJson(fileno(f));
  std::fclose(f);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = obs::ParseJson(buf.str());
  ASSERT_TRUE(doc.ok()) << buf.str();
  ASSERT_TRUE(doc->is_array());
  obs::ResetFlightRingForTesting(obs::FlightRingCapacity());
}

TEST(PostmortemTest, BundleRoundTripsThroughInspect) {
  ScopedTempDir dir("bundle");
  ScopedPostmortemDir postmortem(dir.path());
  obs::ResetFlightRingForTesting(64);
  obs::FlightRecord(obs::FlightEventKind::kSpanBegin, "exec.run");
  obs::FlightRecord(obs::FlightEventKind::kSpanEnd, "exec.run");

  obs::PostmortemInfo info;
  info.reason = "manual";
  info.query = "{x | R(x)}";
  info.query_hash = obs::HashQueryText(info.query);
  info.error = "RESOURCE_EXHAUSTED: max_bytes exceeded";
  info.aborted_limit = "max_bytes";
  info.profile_json = "{\"op\":\"Scan\"}";
  auto path = obs::WritePostmortem(info);
  ASSERT_TRUE(path.ok()) << path.status().ToString();

  auto bundle = obs::ReadPostmortemBundle(*path);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->reason, "manual");
  EXPECT_EQ(bundle->query, info.query);
  EXPECT_EQ(bundle->query_hash, std::to_string(info.query_hash));
  EXPECT_EQ(bundle->error, info.error);
  EXPECT_EQ(bundle->aborted_limit, "max_bytes");
  EXPECT_EQ(bundle->profile.StringOr("op", ""), "Scan");
  ASSERT_GE(bundle->events.size(), 2u);

  std::string rendered = obs::RenderBundle(*bundle);
  EXPECT_NE(rendered.find("reason: manual"), std::string::npos);
  EXPECT_NE(rendered.find("aborted_limit: max_bytes"), std::string::npos);

  auto trace = obs::ParseJson(obs::BundleToChromeTrace(*bundle));
  ASSERT_TRUE(trace.ok());
  const obs::JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->array.size(), 2u);
  obs::ResetFlightRingForTesting(obs::FlightRingCapacity());
}

TEST(PostmortemTest, DisabledWriterFails) {
  ScopedPostmortemDir postmortem("");
  obs::PostmortemInfo info;
  info.reason = "manual";
  EXPECT_FALSE(obs::WritePostmortem(info).ok());
}

TEST(PostmortemTest, GovernorAbortWritesBundleMatchingQueryLog) {
  ScopedTempDir dir("abort");
  ScopedPostmortemDir postmortem(dir.path());
  obs::ResetFlightRingForTesting(4096);

  Compiler compiler;
  Database db;
  std::string csv;
  for (int i = 0; i < 500; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i + 1) + "\n";
  }
  ASSERT_TRUE(LoadCsvText(db, "EDGE", csv).ok());
  auto q = compiler.Compile("{x | exists y (EDGE(x, y))}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  std::ostringstream log_buffer;
  obs::QueryLog log(&log_buffer);
  obs::QueryLog* saved_log = obs::GetQueryLog();
  obs::SetQueryLog(&log);
  uint64_t bundles_before = obs::PostmortemCount();
  setenv("EMCALC_MAX_QUERY_BYTES", "1", 1);
  auto aborted = q->Run(db);
  unsetenv("EMCALC_MAX_QUERY_BYTES");
  obs::SetQueryLog(saved_log);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(obs::PostmortemCount(), bundles_before + 1);

  // Exactly one bundle in the fresh directory.
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    files.push_back(entry.path().string());
  }
  ASSERT_EQ(files.size(), 1u);
  auto bundle = obs::ReadPostmortemBundle(files[0]);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->reason, "governor_abort");
  EXPECT_EQ(bundle->aborted_limit, "max_bytes");
  EXPECT_EQ(bundle->query, "{x | exists y (EDGE(x, y))}");

  // The ring shows the aborting operator's span and the governor trip.
  bool saw_exec_span = false;
  bool saw_trip = false;
  for (const obs::BundleEvent& e : bundle->events) {
    if (e.kind == "span_begin" && e.name == "exec.run") saw_exec_span = true;
    if (e.kind == "governor_trip" && e.name == "max_bytes") saw_trip = true;
  }
  EXPECT_TRUE(saw_exec_span);
  EXPECT_TRUE(saw_trip);

  // The bundle agrees with the query log's record of the same run.
  obs::QueryLogScan scan = obs::ParseQueryLogText(log_buffer.str());
  ASSERT_EQ(scan.bad_lines, 0u);
  bool found_run = false;
  for (const obs::QueryLogRecord& r : scan.records) {
    if (r.event != "run") continue;
    found_run = true;
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.aborted_limit, bundle->aborted_limit);
    EXPECT_EQ(std::to_string(r.query_hash), bundle->query_hash);
  }
  EXPECT_TRUE(found_run);
  obs::ResetFlightRingForTesting(obs::FlightRingCapacity());
}

}  // namespace
}  // namespace emcalc
