// Assorted edge-case and robustness tests: SameAs vs EquivalentTo,
// distribution structure, parser fuzzing (no crashes on garbage), random
// query print/parse round-trips, and optimizer corner cases.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/algebra/optimizer.h"
#include "src/algebra/parser.h"
#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/random_query.h"
#include "src/finds/find_set.h"
#include "src/safety/pushnot.h"
#include "src/translate/distribute.h"
#include "src/translate/enf.h"

namespace emcalc {
namespace {

TEST(FinDSetSameAsTest, OrderInsensitiveSyntacticEquality) {
  SymbolTable t;
  Symbol x = t.Intern("x"), y = t.Intern("y");
  FinDSet a, b;
  a.Add(FinD{SymbolSet{}, SymbolSet{x}});
  a.Add(FinD{SymbolSet{x}, SymbolSet{y}});
  b.Add(FinD{SymbolSet{x}, SymbolSet{y}});
  b.Add(FinD{SymbolSet{}, SymbolSet{x}});
  EXPECT_TRUE(a.SameAs(b));
  // Equivalent but syntactically different: {}->x, x->y vs {}->xy.
  FinDSet c;
  c.Add(FinD{SymbolSet{}, SymbolSet({x, y})});
  EXPECT_TRUE(a.EquivalentTo(c));
  EXPECT_FALSE(a.SameAs(c));
}

TEST(PushNotTest, TripleNegationNormalizes) {
  AstContext ctx;
  auto f = ParseFormula(ctx, "not not not R(x)");
  ASSERT_TRUE(f.ok());
  // The parser preserves the shape; NNF collapses the double negation.
  EXPECT_EQ(FormulaToString(ctx, *f), "not not not R(x)");
  EXPECT_EQ(FormulaToString(ctx, NegationNormalForm(ctx, *f)), "not R(x)");
}

TEST(DistributeTest, NoOrRemainsUnderAnd) {
  AstContext ctx;
  const char* corpus[] = {
      "R(x) and (S(x) or T(x))",
      "R(x) and (S(x) or T(x)) and (A(x) or B(x) or C(x))",
      "exists y (R(y) and (S(y) or T(y))) and U(x)",
  };
  struct Check {
    static bool NoOrUnderAnd(const Formula* f) {
      switch (f->kind()) {
        case FormulaKind::kAnd: {
          for (const Formula* c : f->children()) {
            if (c->kind() == FormulaKind::kOr) return false;
            if (!NoOrUnderAnd(c)) return false;
          }
          return true;
        }
        case FormulaKind::kOr: {
          for (const Formula* c : f->children()) {
            if (!NoOrUnderAnd(c)) return false;
          }
          return true;
        }
        case FormulaKind::kExists:
          if (f->child()->kind() == FormulaKind::kOr) return false;
          return NoOrUnderAnd(f->child());
        case FormulaKind::kNot:
          return true;  // negations translate as a unit
        default:
          return true;
      }
    }
  };
  for (const char* text : corpus) {
    auto f = ParseFormula(ctx, text);
    ASSERT_TRUE(f.ok());
    const Formula* enf = ToEnf(ctx, *f);
    const Formula* d = DistributeDisjunctions(ctx, enf);
    EXPECT_TRUE(Check::NoOrUnderAnd(d)) << FormulaToString(ctx, d);
  }
}

TEST(ParserFuzzTest, GarbageNeverCrashes) {
  std::mt19937_64 rng(99);
  const char alphabet[] =
      "RSxyf(){}|,=!<>' 0123andorextsfl_";
  for (int i = 0; i < 3000; ++i) {
    AstContext ctx;
    std::string junk;
    int len = 1 + static_cast<int>(rng() % 40);
    for (int j = 0; j < len; ++j) {
      junk += alphabet[rng() % (sizeof(alphabet) - 1)];
    }
    // Must return a status, never crash; most inputs are errors.
    (void)ParseQuery(ctx, junk);
    (void)ParseFormula(ctx, junk);
    (void)ParseTerm(ctx, junk);
  }
}

TEST(PlanParserFuzzTest, GarbageNeverCrashes) {
  std::mt19937_64 rng(7);
  const char alphabet[] = "RSprojectselectjoinunit+-(){}[],@123=!<'x ";
  std::map<std::string, int> arities = {{"R", 2}, {"S", 1}};
  for (int i = 0; i < 3000; ++i) {
    AstContext ctx;
    std::string junk;
    int len = 1 + static_cast<int>(rng() % 50);
    for (int j = 0; j < len; ++j) {
      junk += alphabet[rng() % (sizeof(alphabet) - 1)];
    }
    (void)ParseAlgebra(ctx, junk, arities);
  }
}

TEST(RoundTripFuzzTest, RandomQueriesPrintAndReparse) {
  AstContext ctx;
  RandomQueryGen gen(ctx, 31415);
  for (int i = 0; i < 300; ++i) {
    Query q = gen.Next();
    std::string printed = QueryToString(ctx, q);
    auto again = ParseQuery(ctx, printed);
    ASSERT_TRUE(again.ok()) << printed << "\n"
                            << again.status().ToString();
    EXPECT_TRUE(FormulasEqual(q.body, again->body)) << printed;
    EXPECT_EQ(q.head, again->head) << printed;
  }
}

TEST(OptimizerCornerTest, AdomNodesPassThrough) {
  AstContext ctx;
  AlgebraFactory factory(ctx);
  const AlgExpr* adom =
      factory.Adom(2, {ctx.symbols().Intern("succ")}, {});
  const AlgExpr* plan =
      factory.Project({factory.exprs().Col(0)}, adom);
  const AlgExpr* opt = OptimizePlan(factory, plan);
  // project([@1], adom) is the identity projection over a unary input.
  EXPECT_EQ(opt, adom);
}

TEST(OptimizerCornerTest, SharedSubplansStayShared) {
  AstContext ctx;
  AlgebraFactory factory(ctx);
  ExprFactory& e = factory.exprs();
  const AlgExpr* shared = factory.Project(
      {e.Col(0)}, factory.Select({{e.Col(1), AlgCompareOp::kEq,
                                   e.ConstValue(Value::Int(1))}},
                                 factory.Rel("R", 2)));
  const AlgExpr* plan = factory.Diff(shared, shared);
  const AlgExpr* opt = OptimizePlan(factory, plan);
  ASSERT_EQ(opt->kind(), AlgKind::kDiff);
  // The rewrite memoization must keep both sides pointer-identical.
  EXPECT_EQ(opt->left(), opt->right());
}

TEST(EnfCornerTest, ComparisonsUnderNegationUnderOr) {
  AstContext ctx;
  auto f = ParseFormula(ctx, "R(x) and not (x < 3 or S(x))");
  ASSERT_TRUE(f.ok());
  const Formula* enf = ToEnf(ctx, *f);
  // not (a or b) pushes; not (x < 3) flips to 3 <= x.
  EXPECT_EQ(FormulaToString(ctx, enf), "R(x) and 3 <= x and not S(x)");
}

TEST(SymbolFreshTest, ManyFreshNamesStayDistinct) {
  SymbolTable t;
  SymbolSet seen;
  for (int i = 0; i < 1000; ++i) {
    Symbol s = t.Fresh("w");
    EXPECT_FALSE(seen.Contains(s));
    seen.Insert(s);
  }
}

}  // namespace
}  // namespace emcalc
