// Tests for declared function inverses — the [BM92a] comparison point
// (Section 2 of the paper): their notion constructs term closures "using
// both functions and their inverses", which strictly enlarges the set of
// safe queries. With no declared inverses our system matches the paper
// exactly; with them, equalities g(x) = t can *bind* x.
#include <gtest/gtest.h>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/random_query.h"
#include "src/eval/calculus_eval.h"
#include "src/finds/bound.h"
#include "src/safety/em_allowed.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

class InversesTest : public ::testing::Test {
 protected:
  InversesTest() : registry_(BuiltinFunctions()) {
    // S holds both even and odd values: double() is not surjective onto S.
    for (int v : {2, 3, 4, 7, 8}) {
      EXPECT_TRUE(db_.Insert("S", {Value::Int(v)}).ok());
    }
  }

  TranslateOptions WithInverse() {
    TranslateOptions options;
    Symbol dbl = ctx_.symbols().Intern("double");
    Symbol half = ctx_.symbols().Intern("half");
    options.inverse_fns.emplace(dbl, half);
    return options;
  }

  AstContext ctx_;
  Database db_;
  FunctionRegistry registry_;
};

TEST_F(InversesTest, BdGainsInverseFinDs) {
  auto f = ParseFormula(ctx_, "double(x) = y");
  ASSERT_TRUE(f.ok());
  Symbol x = ctx_.symbols().Intern("x");
  Symbol y = ctx_.symbols().Intern("y");
  // Paper default: no inverse information.
  FinDSet plain = BoundingFinDs(ctx_, *f);
  EXPECT_FALSE(plain.Entails(SymbolSet{y}, SymbolSet{x}));
  // With double declared invertible, y -> x appears.
  BoundOptions options;
  options.invertible_fns.Insert(ctx_.symbols().Intern("double"));
  FinDSet inv = BoundingFinDs(ctx_, *f, options);
  EXPECT_TRUE(inv.Entails(SymbolSet{y}, SymbolSet{x}));
  EXPECT_TRUE(inv.Entails(SymbolSet{x}, SymbolSet{y}));
}

TEST_F(InversesTest, StrictlyMoreQueriesAccepted) {
  // {x, y | S(y) and double(x) = y}: x is only derivable backwards.
  auto q = ParseQuery(ctx_, "{x, y | S(y) and double(x) = y}");
  ASSERT_TRUE(q.ok());
  // Paper setting: rejected (no inverses — Section 1's "it might be
  // impossible to compute the inverse of f").
  EXPECT_FALSE(TranslateQuery(ctx_, *q).ok());
  // With the declared inverse: accepted and translated.
  auto t = TranslateQuery(ctx_, *q, WithInverse());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  std::string plan = AlgExprToString(ctx_, t->plan);
  EXPECT_NE(plan.find("half("), std::string::npos) << plan;
}

TEST_F(InversesTest, NonSurjectivityIsChecked) {
  // double(half(v)) == v holds only for even v; odd S-values must drop out.
  auto q = ParseQuery(ctx_, "{x, y | S(y) and double(x) = y}");
  ASSERT_TRUE(q.ok());
  auto t = TranslateQuery(ctx_, *q, WithInverse());
  ASSERT_TRUE(t.ok());
  auto answer = EvaluateAlgebra(ctx_, t->plan, db_, registry_);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  Relation expected(2);
  expected.Insert({Value::Int(1), Value::Int(2)});
  expected.Insert({Value::Int(2), Value::Int(4)});
  expected.Insert({Value::Int(4), Value::Int(8)});
  EXPECT_EQ(*answer, expected) << answer->ToString();
}

TEST_F(InversesTest, MatchesOracleWithInverseClosure) {
  // The reference evaluator needs the inverse in its closure functions —
  // exactly the [BM92a] "closure with inverses" notion.
  auto q = ParseQuery(ctx_, "{x, y | S(y) and double(x) = y}");
  ASSERT_TRUE(q.ok());
  auto t = TranslateQuery(ctx_, *q, WithInverse());
  ASSERT_TRUE(t.ok());
  auto plan_answer = EvaluateAlgebra(ctx_, t->plan, db_, registry_);
  ASSERT_TRUE(plan_answer.ok());
  CalculusEvalOptions oracle_options;
  oracle_options.extra_closure_fns = {{"half", 1}};
  auto oracle = EvaluateCalculus(ctx_, *q, db_, registry_, oracle_options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(*plan_answer, *oracle);
}

TEST_F(InversesTest, InverseInsideNegationAndExists) {
  auto q = ParseQuery(
      ctx_, "{y | S(y) and exists x (double(x) = y and not S(x))}");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(TranslateQuery(ctx_, *q).ok());  // paper default: x unbound
  auto t = TranslateQuery(ctx_, *q, WithInverse());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto answer = EvaluateAlgebra(ctx_, t->plan, db_, registry_);
  ASSERT_TRUE(answer.ok());
  // Even y in S with x = y/2 not in S: y=2 (x=1 not in S: yes),
  // y=4 (x=2 in S: no), y=8 (x=4 in S: no).
  Relation expected(1);
  expected.Insert({Value::Int(2)});
  EXPECT_EQ(*answer, expected) << answer->ToString();
}

TEST_F(InversesTest, RandomQueriesUnaffectedWhenInversesUnused) {
  // Declaring an inverse must not change the answers of queries that were
  // already translatable without it.
  AstContext ctx;
  FunctionRegistry registry;
  registry.Register("rf0", 1, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 1;
    return Value::Int((n + 1) % 5);
  });
  registry.Register("rf0inv", 1, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 1;
    return Value::Int((n + 4) % 5);
  });
  registry.Register("rf1", 2, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 1;
    int64_t m = a[1].is_int() ? a[1].AsInt() : 2;
    return Value::Int((n + 3 * m) % 5);
  });
  RandomQueryGen gen(ctx, 4096);
  TranslateOptions with_inv;
  with_inv.inverse_fns.emplace(ctx.symbols().Intern("rf0"),
                               ctx.symbols().Intern("rf0inv"));
  Database db;
  const auto& arities = gen.relation_arities();
  for (size_t i = 0; i < arities.size(); ++i) {
    Relation rel(arities[i]);
    for (int row = 0; row < 5; ++row) {
      Tuple t;
      for (int c = 0; c < arities[i]; ++c) {
        t.push_back(Value::Int((row * 3 + c) % 5));
      }
      rel.Insert(std::move(t));
    }
    for (TupleRef t : rel) {
      ASSERT_TRUE(db.Insert("R" + std::to_string(i), t.ToTuple()).ok());
    }
  }
  int checked = 0;
  for (int i = 0; i < 40 && checked < 10; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    auto plain = TranslateQuery(ctx, *q);
    ASSERT_TRUE(plain.ok());
    auto inv = TranslateQuery(ctx, *q, with_inv);
    ASSERT_TRUE(inv.ok());
    auto a = EvaluateAlgebra(ctx, plain->plan, db, registry);
    auto b = EvaluateAlgebra(ctx, inv->plan, db, registry);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << QueryToString(ctx, *q);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(InversesTest, OnlyUnaryBareVarApplicationsQualify) {
  // plus(x, x) = y gives no inverse binding even if plus were declared.
  TranslateOptions options;
  options.inverse_fns.emplace(ctx_.symbols().Intern("plus"),
                              ctx_.symbols().Intern("half"));
  auto q = ParseQuery(ctx_, "{x, y | S(y) and plus(x, x) = y}");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(TranslateQuery(ctx_, *q, options).ok());
}

}  // namespace
}  // namespace emcalc
