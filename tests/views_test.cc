// Tests for view definitions (named queries expanded as relation atoms).
#include <gtest/gtest.h>

#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/calculus/views.h"
#include "src/core/compiler.h"

namespace emcalc {
namespace {

class ViewsTest : public ::testing::Test {
 protected:
  ViewsTest() {
    // EDGE(a, b): a small graph.
    // 1 -> 2 -> 3 -> 4, plus shortcuts 1 -> 4 and 2 -> 4.
    const int edges[][2] = {{1, 2}, {2, 3}, {3, 4}, {1, 4}, {2, 4}};
    for (auto [a, b] : edges) {
      EXPECT_TRUE(
          db_.Insert("EDGE", {Value::Int(a), Value::Int(b)}).ok());
    }
  }
  Compiler compiler_;
  Database db_;
};

TEST_F(ViewsTest, BasicExpansionAndRun) {
  ASSERT_TRUE(compiler_
                  .DefineView("TWO_HOP",
                              "{a, c | exists b (EDGE(a, b) and EDGE(b, c))}")
                  .ok());
  auto q = compiler_.Compile("{x, y | TWO_HOP(x, y)}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto answer = q->Run(db_);
  ASSERT_TRUE(answer.ok());
  Relation expected(2);
  expected.Insert({Value::Int(1), Value::Int(3)});  // 1-2-3
  expected.Insert({Value::Int(2), Value::Int(4)});  // 2-3-4
  expected.Insert({Value::Int(1), Value::Int(4)});  // 1-2-4
  EXPECT_EQ(*answer, expected);
}

TEST_F(ViewsTest, ViewsComposeAndNest) {
  ASSERT_TRUE(compiler_
                  .DefineView("TWO_HOP",
                              "{a, c | exists b (EDGE(a, b) and EDGE(b, c))}")
                  .ok());
  ASSERT_TRUE(compiler_
                  .DefineView("SHORTCUT",
                              "{a, c | TWO_HOP(a, c) and EDGE(a, c)}")
                  .ok());
  auto q = compiler_.Compile("{x | SHORTCUT(x, 4)}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto answer = q->Run(db_);
  ASSERT_TRUE(answer.ok());
  // TWO_HOP into 4: (2,4) via 2-3-4 and (1,4) via 1-2-4; both also have a
  // direct edge.
  ASSERT_EQ(answer->size(), 2u);
  EXPECT_TRUE(answer->Contains({Value::Int(1)}));
  EXPECT_TRUE(answer->Contains({Value::Int(2)}));
}

TEST_F(ViewsTest, ArgumentsMayBeTermsAndConstants) {
  ASSERT_TRUE(
      compiler_.DefineView("LOOPBACK", "{a, b | EDGE(a, b) and EDGE(b, a)}")
          .ok());
  // Function-term argument: LOOPBACK(succ(x), x).
  auto q = compiler_.Compile("{x | EDGE(x, x) or (EDGE(x, 2) and "
                             "LOOPBACK(succ(x), succ(x)))}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto answer = q->Run(db_);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());  // no self-loops in the instance
}

TEST_F(ViewsTest, BoundVariablesAreRenamedApart) {
  // The view's bound variable b must not collide with the caller's b.
  ASSERT_TRUE(compiler_
                  .DefineView("HAS_SUCCESSOR",
                              "{a | exists b (EDGE(a, b))}")
                  .ok());
  auto q = compiler_.Compile("{b | EDGE(1, b) and HAS_SUCCESSOR(b)}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto answer = q->Run(db_);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_TRUE(answer->Contains({Value::Int(2)}));  // 2 has an edge; 4 not
}

TEST_F(ViewsTest, ViewsNeedNotBeSafeAlone) {
  // {x, y | succ(x) = y} is not em-allowed standalone but fine as a view
  // when the caller bounds x.
  ASSERT_TRUE(compiler_.DefineView("NEXT", "{x, y | succ(x) = y}").ok());
  auto bad = compiler_.Compile("{x, y | NEXT(x, y)}");
  EXPECT_FALSE(bad.ok());
  auto good = compiler_.Compile("{x, y | EDGE(x, 2) and NEXT(x, y)}");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  auto answer = good->Run(db_);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->Contains({Value::Int(1), Value::Int(2)}));
}

TEST_F(ViewsTest, ParameterizedQueriesSeeViews) {
  ASSERT_TRUE(compiler_
                  .DefineView("REACH2",
                              "{a, c | exists b (EDGE(a, b) and EDGE(b, c))}")
                  .ok());
  auto q = compiler_.CompileParameterized("{c | REACH2(src, c)}", {"src"});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto from1 = q->Run(db_, {Value::Int(1)});
  ASSERT_TRUE(from1.ok());
  EXPECT_TRUE(from1->Contains({Value::Int(3)}));
}

TEST_F(ViewsTest, ErrorsAreReported) {
  // Ill-formed definition.
  EXPECT_FALSE(compiler_.DefineView("BAD", "{x, y | EDGE(x, x)}").ok());
  // Arity mismatch at use.
  ASSERT_TRUE(compiler_.DefineView("V", "{a | EDGE(a, a)}").ok());
  EXPECT_FALSE(compiler_.Compile("{x, y | V(x, y)}").ok());
  // Self-referential view.
  EXPECT_FALSE(compiler_.DefineView("W", "{a | W(a)}").ok());
}

TEST_F(ViewsTest, MutualRecursionRejectedAtUse) {
  AstContext ctx;
  auto v1 = ParseQuery(ctx, "{a | V2(a)}");
  auto v2 = ParseQuery(ctx, "{a | V1(a)}");
  ASSERT_TRUE(v1.ok() && v2.ok());
  ViewMap views;
  views[ctx.symbols().Intern("V1")] = *v1;
  views[ctx.symbols().Intern("V2")] = *v2;
  auto f = ParseFormula(ctx, "V1(x)");
  ASSERT_TRUE(f.ok());
  auto expanded = ExpandViews(ctx, *f, views);
  ASSERT_FALSE(expanded.ok());
  EXPECT_NE(expanded.status().message().find("cyclic"), std::string::npos);
}

}  // namespace
}  // namespace emcalc
