// Tests for the durable history store (src/obs/history.h) and the
// est-vs-actual feedback loop it closes: record/reload round trips,
// crash-truncated tails, generation compaction, concurrent recording from
// the thread pool (run under TSAN in CI), the misestimate-factor guards,
// and the end-to-end estimate correction — a warm store must change
// lowered estimates (with provenance in EXPLAIN ANALYZE) while answers
// stay bit-identical across cold/warm stores and thread counts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/calculus/parser.h"
#include "src/core/compiler.h"
#include "src/core/workload.h"
#include "src/exec/feedback.h"
#include "src/exec/lower.h"
#include "src/obs/history.h"
#include "src/obs/query_log.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

// A fresh directory under the test tmpdir; removed at scope exit.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) {
    path_ = ::testing::TempDir() + "emcalc_" + tag + "_" +
            std::to_string(::getpid());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Installs `store` as the process-global sink; restores the previous one.
class ScopedHistoryStore {
 public:
  explicit ScopedHistoryStore(obs::HistoryStore* store)
      : saved_(obs::GetHistoryStore()) {
    obs::SetHistoryStore(store);
  }
  ~ScopedHistoryStore() { obs::SetHistoryStore(saved_); }

 private:
  obs::HistoryStore* saved_;
};

obs::RunObservation MakeRun(uint64_t hash, uint64_t wall_ns,
                            uint64_t actual_rows) {
  obs::RunObservation run;
  run.query_hash = hash;
  run.query = "{x | Q" + std::to_string(hash) + "(x)}";
  run.wall_ns = wall_ns;
  run.peak_bytes = 1 << 16;
  run.rows_out = actual_rows;
  obs::RunObservation::Op op;
  op.path = "FilterSelect/0:Scan";
  op.op = "Scan(R)";
  op.est_rows = 100;
  op.actual_rows = actual_rows;
  op.factor = MisestimateFactor(op.est_rows,
                                static_cast<double>(op.actual_rows));
  run.ops.push_back(op);
  return run;
}

const obs::QueryHistory* FindHash(const obs::HistoryScan& scan,
                                  uint64_t hash) {
  for (const obs::QueryHistory& h : scan.entries) {
    if (h.query_hash == hash) return &h;
  }
  return nullptr;
}

TEST(HistoryStoreTest, RecordReloadRoundTrip) {
  ScopedTempDir dir("hist_rt");
  {
    auto store = obs::HistoryStore::Open(dir.path());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    (*store)->RecordRun(MakeRun(7, 1000, 10));
    (*store)->RecordRun(MakeRun(7, 3000, 30));
    (*store)->RecordRun(MakeRun(9, 2000, 50));
    EXPECT_EQ((*store)->query_count(), 2u);
    EXPECT_EQ((*store)->total_runs(), 3u);
    auto est = (*store)->LookupEstimate(7, "FilterSelect/0:Scan");
    ASSERT_TRUE(est.has_value());
    EXPECT_DOUBLE_EQ(est->est_rows, 20.0);  // mean of 10 and 30
    EXPECT_EQ(est->runs, 2u);
  }
  // Reopen: the JSON-Lines log replays to the same aggregates.
  auto store = obs::HistoryStore::Open(dir.path());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->query_count(), 2u);
  EXPECT_EQ((*store)->total_runs(), 3u);
  EXPECT_EQ((*store)->bad_lines(), 0u);
  auto est = (*store)->LookupEstimate(7, "FilterSelect/0:Scan");
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->est_rows, 20.0);
  EXPECT_EQ(est->runs, 2u);
  EXPECT_FALSE((*store)->LookupEstimate(7, "NoSuchPath").has_value());
  EXPECT_FALSE((*store)->LookupEstimate(8, "FilterSelect/0:Scan").has_value());

  obs::HistoryScan scan = (*store)->Scan();
  const obs::QueryHistory* h7 = FindHash(scan, 7);
  ASSERT_NE(h7, nullptr);
  EXPECT_EQ(h7->runs, 2u);
  EXPECT_EQ(h7->rows_out_last, 30u);
  EXPECT_EQ(h7->wall.count, 2u);
  EXPECT_DOUBLE_EQ(h7->MeanWallNs(), 2000.0);
  ASSERT_EQ(h7->wall_trend.size(), 2u);
  EXPECT_EQ(h7->wall_trend[0], 1000u);  // oldest first
  EXPECT_EQ(h7->wall_trend[1], 3000u);
  EXPECT_GE(obs::HistoryWallPercentile(*h7, 90), 3000.0);
}

TEST(HistoryStoreTest, TruncatedTailSkippedAndRepaired) {
  ScopedTempDir dir("hist_torn");
  std::string file = obs::ResolveHistoryPath(dir.path());
  {
    auto store = obs::HistoryStore::Open(dir.path());
    ASSERT_TRUE(store.ok());
    (*store)->RecordRun(MakeRun(1, 100, 5));
    (*store)->RecordRun(MakeRun(2, 200, 5));
  }
  // Simulate a crash mid-append: a torn final line with no newline.
  {
    std::ofstream out(file, std::ios::app | std::ios::binary);
    out << R"({"v":1,"type":"run","hash":"3","que)";
  }
  {
    auto store = obs::HistoryStore::Open(dir.path());
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.value()->bad_lines(), 1u);  // torn line skipped
    EXPECT_EQ(store.value()->total_runs(), 2u);
    // The reopened store must keep appending valid lines after the torn
    // tail (a newline is patched in before the next record).
    store.value()->RecordRun(MakeRun(4, 400, 5));
  }
  auto store = obs::HistoryStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->bad_lines(), 1u);
  EXPECT_EQ(store.value()->total_runs(), 3u);
  EXPECT_NE(FindHash(store.value()->Scan(), 4), nullptr);
}

TEST(HistoryStoreTest, ReadHistoryFileMatchesStoreScan) {
  ScopedTempDir dir("hist_read");
  {
    auto store = obs::HistoryStore::Open(dir.path());
    ASSERT_TRUE(store.ok());
    (*store)->RecordRun(MakeRun(5, 100, 8));
    (*store)->RecordRun(MakeRun(6, 100, 8));
  }
  // Both the directory and the file spell the same store.
  auto scan = obs::ReadHistoryFile(obs::ResolveHistoryPath(dir.path()));
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->entries.size(), 2u);
  EXPECT_EQ(scan->total_runs, 2u);
  // entries are sorted by hash.
  EXPECT_EQ(scan->entries[0].query_hash, 5u);
  EXPECT_EQ(scan->entries[1].query_hash, 6u);
  EXPECT_FALSE(
      obs::ReadHistoryFile(dir.path() + "/no_such_file.jsonl").ok());
}

TEST(HistoryStoreTest, CompactionFoldsRunsIntoAggGenerations) {
  ScopedTempDir dir("hist_compact");
  obs::HistoryStore::Options options;
  options.max_bytes = 4096;  // force several compactions
  constexpr uint64_t kRuns = 300;
  {
    auto store = obs::HistoryStore::Open(dir.path(), options);
    ASSERT_TRUE(store.ok());
    for (uint64_t i = 0; i < kRuns; ++i) {
      (*store)->RecordRun(MakeRun(1 + i % 3, 100 * i, 10 + i));
    }
    EXPECT_GE((*store)->generation(), 1u);
    EXPECT_EQ((*store)->total_runs(), kRuns);
    EXPECT_EQ((*store)->query_count(), 3u);
  }
  // The compacted file is agg lines plus a short run tail — far fewer
  // lines than runs — and reloads to the identical aggregate state.
  std::ifstream in(obs::ResolveHistoryPath(dir.path()));
  size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_LT(lines, kRuns / 2);

  auto store = obs::HistoryStore::Open(dir.path(), options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->total_runs(), kRuns);
  EXPECT_EQ((*store)->query_count(), 3u);
  EXPECT_GE((*store)->generation(), 1u);
  EXPECT_EQ((*store)->bad_lines(), 0u);
  auto est = (*store)->LookupEstimate(1, "FilterSelect/0:Scan");
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->runs, kRuns / 3);
}

TEST(HistoryStoreTest, ExplicitCompactPreservesEstimates) {
  ScopedTempDir dir("hist_force");
  auto store = obs::HistoryStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  (*store)->RecordRun(MakeRun(11, 500, 40));
  (*store)->RecordRun(MakeRun(11, 700, 60));
  uint64_t gen = (*store)->generation();
  (*store)->Compact();
  EXPECT_EQ((*store)->generation(), gen + 1);
  auto est = (*store)->LookupEstimate(11, "FilterSelect/0:Scan");
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->est_rows, 50.0);
  // And the compacted file alone reproduces it.
  auto reload = obs::HistoryStore::Open(dir.path());
  ASSERT_TRUE(reload.ok());
  auto est2 = (*reload)->LookupEstimate(11, "FilterSelect/0:Scan");
  ASSERT_TRUE(est2.has_value());
  EXPECT_DOUBLE_EQ(est2->est_rows, 50.0);
  EXPECT_EQ(est2->runs, 2u);
}

// CI runs this under TSAN with EMCALC_HARDWARE_THREADS=4: every pool
// worker records into the same store, and nothing may be lost or torn.
TEST(HistoryStoreTest, ConcurrentRecordingOnPoolLosesNothing) {
  ScopedTempDir dir("hist_conc");
  constexpr size_t kRuns = 400;
  obs::HistoryStore::Options options;
  options.max_bytes = 16384;  // let compactions race the writers too
  {
    auto store = obs::HistoryStore::Open(dir.path(), options);
    ASSERT_TRUE(store.ok());
    obs::HistoryStore* s = store->get();
    ThreadPool::Global().ParallelFor(
        kRuns, /*grain=*/8, /*max_workers=*/4,
        [s](size_t /*worker*/, size_t begin, size_t end) {
          for (size_t t = begin; t < end; ++t) {
            s->RecordRun(MakeRun(1 + t % 8, 10 * t, t));
          }
        });
    EXPECT_EQ(s->total_runs(), kRuns);
    EXPECT_EQ(s->query_count(), 8u);
    uint64_t scan_runs = 0;
    for (const obs::QueryHistory& h : s->Scan().entries) {
      scan_runs += h.runs;
    }
    EXPECT_EQ(scan_runs, kRuns);
  }
  // A clean reload proves no record was torn on disk.
  auto store = obs::HistoryStore::Open(dir.path(), options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->bad_lines(), 0u);
  EXPECT_EQ((*store)->total_runs(), kRuns);
  EXPECT_EQ((*store)->query_count(), 8u);
}

TEST(MisestimateFactorTest, EdgeCasesStayFinite) {
  // Perfect and near-trivial estimates.
  EXPECT_DOUBLE_EQ(MisestimateFactor(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(MisestimateFactor(100, 100), 1.0);
  // Symmetric over/under.
  EXPECT_DOUBLE_EQ(MisestimateFactor(10, 100), 10.0);
  EXPECT_DOUBLE_EQ(MisestimateFactor(100, 10), 10.0);
  // A zero on one side must not divide to infinity.
  EXPECT_DOUBLE_EQ(MisestimateFactor(0, 5), 5.0);
  EXPECT_DOUBLE_EQ(MisestimateFactor(5, 0), 5.0);
  // Non-finite and astronomically large inputs are capped.
  double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(MisestimateFactor(inf, 10), kMisestimateFactorCap);
  EXPECT_DOUBLE_EQ(MisestimateFactor(1e308, 1), kMisestimateFactorCap);
  EXPECT_TRUE(std::isfinite(MisestimateFactor(inf, inf)));
}

TEST(MisestimateFactorTest, FeedbackJsonHasNoInfinity) {
  // A zero estimate against a huge actual used to serialize "inf", which
  // is not JSON. The guard caps the factor and keeps the record parseable.
  ExecProfile profile;
  profile.op = PhysOpKind::kFilterSelect;
  profile.stats.est_rows = 0;
  profile.stats.rows_out = 1u << 20;
  PlanFeedback fb = BuildPlanFeedback(profile);
  ASSERT_EQ(fb.entries.size(), 1u);
  EXPECT_TRUE(std::isfinite(fb.entries[0].factor));
  std::string json = fb.ToJson();
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

// The plan side (PlanOpPaths, used at lowering time) and the profile side
// (CollectRunObservation, used at recording time) must derive identical
// operator paths, or the feedback loop silently never matches.
TEST(HistoryFeedbackTest, PlanAndProfilePathsAlign) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x, y | R(x, y) and (S(x) or T(y))}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto t = TranslateQuery(ctx, *q);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  FunctionRegistry registry = BuiltinFunctions();
  auto plan = Lower(ctx, t->plan, registry);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::set<std::string> plan_paths;
  for (const std::string& p : PlanOpPaths(*plan)) {
    if (!p.empty()) plan_paths.insert(p);
  }
  ASSERT_FALSE(plan_paths.empty());

  Database db;
  AddRandomTuples(db, "R", 2, 500, 40, 1);
  AddRandomTuples(db, "S", 1, 20, 40, 2);
  AddRandomTuples(db, "T", 1, 20, 40, 3);
  ExecProfile profile;
  auto answer = plan->ExecuteToRelation(db, &profile);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();

  obs::RunObservation run =
      CollectRunObservation(obs::HashQueryText("q"), "q", profile);
  ASSERT_FALSE(run.ops.empty());
  for (const obs::RunObservation::Op& op : run.ops) {
    EXPECT_TRUE(plan_paths.count(op.path) > 0)
        << "profile path not derivable from the plan: " << op.path;
  }
}

// End to end through the compiler: a warm store corrects estimates (with
// provenance in the profile and EXPLAIN ANALYZE) and never changes
// answers — cold vs warm, and across thread counts.
TEST(HistoryFeedbackTest, WarmStoreCorrectsEstimatesKeepsAnswers) {
  ScopedTempDir dir("hist_e2e");
  auto store = obs::HistoryStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  ScopedHistoryStore scoped(store->get());

  Database db;
  AddRandomTuples(db, "R", 2, 1000, 50, 1);
  AddRandomTuples(db, "S", 1, 25, 50, 2);
  const std::string text = "{x, y | R(x, y) and S(x)}";

  // Cold: heuristic estimates only; the run records actuals.
  Compiler cold;
  auto q1 = cold.Compile(text);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  ExecProfile p1;
  auto a1 = q1->RunWithProfile(db, &p1);
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  EXPECT_EQ(CountHistoryCorrectedOps(p1), 0u);
  EXPECT_GT(store->get()->total_runs(), 0u);

  // Warm: recompiling consults the recorded actuals.
  Compiler warm;
  auto q2 = warm.Compile(text);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  ExecProfile p2;
  auto a2 = q2->RunWithProfile(db, &p2);
  ASSERT_TRUE(a2.ok()) << a2.status().ToString();
  EXPECT_GT(CountHistoryCorrectedOps(p2), 0u);
  EXPECT_TRUE(*a1 == *a2);

  // Corrected entries carry their provenance into the feedback report and
  // EXPLAIN ANALYZE; with est == past actual they read as exact.
  PlanFeedback fb = BuildPlanFeedback(p2);
  bool corrected = false;
  for (const PlanFeedbackEntry& e : fb.entries) {
    if (e.est_history_runs > 0) corrected = true;
  }
  EXPECT_TRUE(corrected);
  auto explain = q2->ExplainAnalyze(db);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("[history:"), std::string::npos) << *explain;

  // Thread counts do not perturb the answer, warm or cold.
  AstContext ctx;
  auto q = ParseQuery(ctx, text);
  ASSERT_TRUE(q.ok());
  auto t = TranslateQuery(ctx, *q);
  ASSERT_TRUE(t.ok());
  FunctionRegistry registry = BuiltinFunctions();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ExecOptions options;
    options.num_threads = threads;
    options.query_hash = obs::HashQueryText(text);
    auto plan = Lower(ctx, t->plan, registry, options);
    ASSERT_TRUE(plan.ok());
    auto answer = plan->ExecuteToRelation(db, nullptr);
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE(*answer == *a1) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace emcalc
