// Tests for pushnot, simplification, the em-allowed criterion, and the
// comparison criteria (GT91 allowed, AB88 range-restriction, Top91 safe).
#include <gtest/gtest.h>

#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/safety/allowed.h"
#include "src/safety/em_allowed.h"
#include "src/safety/pushnot.h"
#include "src/safety/simplify.h"

namespace emcalc {
namespace {

class SafetyTest : public ::testing::Test {
 protected:
  const Formula* Parse(std::string_view text) {
    auto f = ParseFormula(ctx_, text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    return *f;
  }
  std::string Print(const Formula* f) { return FormulaToString(ctx_, f); }
  AstContext ctx_;
};

// --- pushnot ---

TEST_F(SafetyTest, PushNotSwapsEqualityPolarity) {
  EXPECT_EQ(Print(PushNotStep(ctx_, Parse("not x = y"))), "x != y");
  EXPECT_EQ(Print(PushNotStep(ctx_, Parse("not x != y"))), "x = y");
}

TEST_F(SafetyTest, PushNotLeavesRelationAtoms) {
  const Formula* f = Parse("not R(x)");
  EXPECT_EQ(PushNotStep(ctx_, f), f);
}

TEST_F(SafetyTest, PushNotDeMorgan) {
  EXPECT_EQ(Print(PushNotStep(ctx_, Parse("not (R(x) and S(x))"))),
            "not R(x) or not S(x)");
  EXPECT_EQ(Print(PushNotStep(ctx_, Parse("not (R(x) or S(x))"))),
            "not R(x) and not S(x)");
}

TEST_F(SafetyTest, PushNotFlipsQuantifiers) {
  EXPECT_EQ(Print(PushNotStep(ctx_, Parse("not exists x (R(x))"))),
            "forall x (not R(x))");
  EXPECT_EQ(Print(PushNotStep(ctx_, Parse("not forall x (R(x))"))),
            "exists x (not R(x))");
}

TEST_F(SafetyTest, NegationNormalForm) {
  const Formula* f =
      Parse("not (R(x) and (S(x) or not exists y (T(y) and x != y)))");
  const Formula* nnf = NegationNormalForm(ctx_, f);
  EXPECT_EQ(Print(nnf),
            "not R(x) or not S(x) and exists y (T(y) and x != y)");
}

// --- simplify ---

TEST_F(SafetyTest, SimplifyConstants) {
  EXPECT_EQ(Print(Simplify(ctx_, Parse("R(x) and true"))), "R(x)");
  EXPECT_EQ(Simplify(ctx_, Parse("R(x) and false")), ctx_.False());
  EXPECT_EQ(Simplify(ctx_, Parse("R(x) or true")), ctx_.True());
  EXPECT_EQ(Print(Simplify(ctx_, Parse("not not R(x)"))), "R(x)");
}

TEST_F(SafetyTest, SimplifyTrivialEqualities) {
  EXPECT_EQ(Simplify(ctx_, Parse("x = x")), ctx_.True());
  EXPECT_EQ(Simplify(ctx_, Parse("f(x) != f(x)")), ctx_.False());
  // Non-identical terms stay.
  EXPECT_EQ(Print(Simplify(ctx_, Parse("x = y"))), "x = y");
}

TEST_F(SafetyTest, SimplifyPrunesVacuousQuantifiers) {
  EXPECT_EQ(Print(Simplify(ctx_, Parse("exists y (R(x))"))), "R(x)");
  EXPECT_EQ(Print(Simplify(ctx_, Parse("exists y, z (R(x, z))"))),
            "exists z (R(x, z))");
}

TEST_F(SafetyTest, SimplifyIsIdempotentOnCorpus) {
  const char* corpus[] = {
      "R(x) and (true or S(x))",
      "not not (R(x) and x = x)",
      "exists x (exists y (R(x, y)))",
      "forall x (R(x) or false)",
  };
  for (const char* text : corpus) {
    const Formula* once = Simplify(ctx_, Parse(text));
    EXPECT_TRUE(IsSimplified(once)) << Print(once);
    EXPECT_EQ(Simplify(ctx_, once), once) << text;
  }
}

// --- em-allowed: the paper's named queries ---

struct Case {
  const char* text;
  bool em_allowed;
};

class EmAllowedCase : public SafetyTest,
                      public ::testing::WithParamInterface<Case> {};

TEST_P(EmAllowedCase, Matches) {
  const Formula* f = Parse(GetParam().text);
  SafetyResult r = CheckEmAllowed(ctx_, f);
  EXPECT_EQ(r.em_allowed, GetParam().em_allowed)
      << GetParam().text << " : " << r.reason;
}

INSTANTIATE_TEST_SUITE_P(
    PaperQueries, EmAllowedCase,
    ::testing::Values(
        // q1: project-style function query.
        Case{"exists x (R(x) and y = g(f(x)))", true},
        // q2: em-allowed but not range-restricted (Section 2).
        Case{"R(x) and exists y (f(x) = y and not R(y))", true},
        // q4 (with the bounding atom B(x); DESIGN.md R3): em-allowed.
        Case{"B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
             "((h(x) != y and k(x) != y) or P(x, y)))",
             true},
        // q4 without any bounding for x: x escapes, not em-allowed.
        Case{"not (((f(x) != y and g(x) != y) or R(x, y)) and "
             "((h(x) != y and k(x) != y) or P(x, y)))",
             false},
        // q5: em-allowed but not Top91-safe.
        Case{"(R(x) and f(x) = y) or (S(y) and g(y) = x)", true},
        // q6: the classic difference query.
        Case{"R(x, y, z) and not S(y, z)", true},
        // q7: not embedded domain independent (Section 2 vs Top91).
        Case{"x = 0 and forall u (exists v (plus(u, 1) = v))", false}));

class UnsafeCase : public SafetyTest,
                   public ::testing::WithParamInterface<const char*> {};

TEST_P(UnsafeCase, Rejected) {
  const Formula* f = Parse(GetParam());
  SafetyResult r = CheckEmAllowed(ctx_, f);
  EXPECT_FALSE(r.em_allowed) << GetParam();
  EXPECT_FALSE(r.reason.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Unsafe, UnsafeCase,
    ::testing::Values(
        "not R(x)",                          // complement of a relation
        "x = y",                             // unbounded equality
        "f(x) = y",                          // no base bounding
        "R(x) or S(y)",                      // disjunct leaves y free
        "R(x) and x != y",                   // inequality bounds nothing
        "R(x) and not (S(y) and T(y))",      // negation hides y
        "exists y (R(x))",                   // vacuous quantifier unbounded
        "R(f(x))",                           // no inverse functions
        "R(x) and forall y (S(x, y))"));     // forall over infinite domain

TEST_F(SafetyTest, EmAllowedForContext) {
  // f(x) = y alone is not em-allowed, but it is em-allowed for {x}
  // (the paper's "em-allowed for X" for embedded program variables).
  const Formula* f = Parse("f(x) = y");
  EmAllowedChecker checker(ctx_);
  EXPECT_FALSE(checker.CheckFormula(f, SymbolSet{}).em_allowed);
  EXPECT_TRUE(
      checker.CheckFormula(f, SymbolSet{ctx_.symbols().Intern("x")})
          .em_allowed);
}

TEST_F(SafetyTest, EmAllowedQueryFormMatchesFormulaForm) {
  auto q = ParseQuery(ctx_, "{x, y | R(x) and f(x) = y}");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(CheckEmAllowed(ctx_, *q).em_allowed);
}

TEST_F(SafetyTest, ForallCheckedViaDual) {
  // forall y (R(y) -> S(y)) style: not exists y (R(y) and not S(y)).
  const Formula* ok = Parse("Q(x) and not exists y (R(y) and not S(y))");
  EXPECT_TRUE(CheckEmAllowed(ctx_, ok).em_allowed);
  const Formula* dual = Parse("Q(x) and forall y (not R(y) or S(y))");
  EXPECT_TRUE(CheckEmAllowed(ctx_, dual).em_allowed);
}

// --- comparison criteria ---

TEST_F(SafetyTest, AllowedGT91RejectsFunctions) {
  EXPECT_FALSE(IsAllowedGT91(ctx_, Parse("R(x) and f(x) = y")));
  EXPECT_TRUE(IsAllowedGT91(ctx_, Parse("R(x, y) and not S(y)")));
  EXPECT_FALSE(IsAllowedGT91(ctx_, Parse("not R(x)")));
}

TEST_F(SafetyTest, RangeRestrictionIsLocal) {
  // q2 is em-allowed but NOT range-restricted (paper, Section 2).
  const Formula* q2 = Parse("R(x) and exists y (f(x) = y and not R(y))");
  EXPECT_TRUE(CheckEmAllowed(ctx_, q2).em_allowed);
  EXPECT_FALSE(IsRangeRestricted(ctx_, q2));
  // Plain positive queries are range-restricted.
  EXPECT_TRUE(IsRangeRestricted(ctx_, Parse("R(x, y) and S(y)")));
  // Function of a restricted variable restricts its target.
  EXPECT_TRUE(IsRangeRestricted(ctx_, Parse("R(x) and f(x) = y")));
}

TEST_F(SafetyTest, Top91SafeRejectsQ5) {
  // q5 is em-allowed but not Top91-safe (paper, Section 2).
  const Formula* q5 = Parse("(R(x) and f(x) = y) or (S(y) and g(y) = x)");
  EXPECT_TRUE(CheckEmAllowed(ctx_, q5).em_allowed);
  EXPECT_FALSE(IsTop91Safe(ctx_, q5));
  // Uniform disjunctions stay safe.
  const Formula* uniform = Parse("(R(x) and f(x) = y) or (S(x) and f(x) = y)");
  EXPECT_TRUE(IsTop91Safe(ctx_, uniform));
}

TEST_F(SafetyTest, Top91SafeAcceptsQ4) {
  // q4 satisfies Top91's safety definition (though GT91-only
  // transformations cannot translate it — that's experiment E6).
  const Formula* q4 =
      Parse("B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
            "((h(x) != y and k(x) != y) or P(x, y)))");
  EXPECT_TRUE(IsTop91Safe(ctx_, q4));
}

TEST_F(SafetyTest, ContainmentOnFunctionFreeFormulas) {
  // For function-free formulas, em-allowed == GT91 allowed by definition,
  // and both imply nothing about range restriction in general; check a few
  // concrete points of the containment table (experiment E8).
  const char* function_free[] = {
      "R(x, y) and not S(y)",
      "R(x) or S(x)",
      "R(x) and exists y (S(x, y) and not T(y))",
  };
  for (const char* text : function_free) {
    const Formula* f = Parse(text);
    EXPECT_EQ(IsAllowedGT91(ctx_, f), CheckEmAllowed(ctx_, f).em_allowed)
        << text;
  }
}

TEST_F(SafetyTest, RejectionsCarryStructuredBlame) {
  SafetyResult r = CheckEmAllowed(ctx_, Parse("R(x) and not (S(y) and T(y))"));
  ASSERT_FALSE(r.em_allowed);
  // Structured fields are the supported interface: a violation code and the
  // set of variables that could not be confined.
  EXPECT_NE(r.violation, SafetyViolation::kNone);
  EXPECT_FALSE(SafetyViolationCode(r.violation).empty());
  EXPECT_TRUE(r.unbounded.Contains(ctx_.symbols().Intern("y")));
  // The flat reason string remains populated for backward compatibility.
  EXPECT_NE(r.reason.find("y"), std::string::npos);
}

}  // namespace
}  // namespace emcalc
