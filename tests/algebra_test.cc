// Tests for the extended algebra: expression trees, plan construction,
// printing in the paper's syntax, evaluation of every operator, and the
// plan simplifier.
#include <gtest/gtest.h>

#include "src/algebra/ast.h"
#include "src/algebra/eval.h"
#include "src/algebra/optimizer.h"
#include "src/algebra/printer.h"
#include "src/storage/interpretation.h"

namespace emcalc {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  AlgebraTest() : factory_(ctx_), registry_(BuiltinFunctions()) {
    // R = {(1,10), (2,20), (3,30)}; S = {(10), (99)}.
    EXPECT_TRUE(db_.AddRelation("R", 2).ok());
    for (int i = 1; i <= 3; ++i) {
      EXPECT_TRUE(
          db_.Insert("R", {Value::Int(i), Value::Int(10 * i)}).ok());
    }
    EXPECT_TRUE(db_.Insert("S", {Value::Int(10)}).ok());
    EXPECT_TRUE(db_.Insert("S", {Value::Int(99)}).ok());
  }

  Relation Run(const AlgExpr* plan) {
    auto r = EvaluateAlgebra(ctx_, plan, db_, registry_, &stats_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : Relation(plan->arity());
  }

  AstContext ctx_;
  AlgebraFactory factory_;
  FunctionRegistry registry_;
  Database db_;
  AlgebraEvalStats stats_;
};

TEST_F(AlgebraTest, ScanAndPrint) {
  const AlgExpr* r = factory_.Rel("R", 2);
  EXPECT_EQ(AlgExprToString(ctx_, r), "R");
  EXPECT_EQ(Run(r).size(), 3u);
}

TEST_F(AlgebraTest, ExtendedProjectionAppliesFunctions) {
  // project([@1, succ(@2)], R) — the paper's point-wise function
  // application.
  ExprFactory& e = factory_.exprs();
  const AlgExpr* plan = factory_.Project(
      {e.Col(0),
       e.Apply(ctx_.symbols().Intern("succ"), std::vector<const ScalarExpr*>{
                                                  e.Col(1)})},
      factory_.Rel("R", 2));
  EXPECT_EQ(AlgExprToString(ctx_, plan), "project([@1,succ(@2)], R)");
  Relation out = Run(plan);
  EXPECT_TRUE(out.Contains({Value::Int(1), Value::Int(11)}));
  EXPECT_TRUE(out.Contains({Value::Int(3), Value::Int(31)}));
  EXPECT_GT(stats_.function_calls, 0u);
}

TEST_F(AlgebraTest, ProjectionDeduplicates) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* plan = factory_.Project(
      {e.ConstValue(Value::Int(7))}, factory_.Rel("R", 2));
  EXPECT_EQ(Run(plan).size(), 1u);
}

TEST_F(AlgebraTest, SelectEqualAndNotEqual) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* eq = factory_.Select(
      {{e.Col(0), AlgCompareOp::kEq, e.ConstValue(Value::Int(2))}}, factory_.Rel("R", 2));
  EXPECT_EQ(Run(eq).size(), 1u);
  const AlgExpr* ne = factory_.Select(
      {{e.Col(0), AlgCompareOp::kNe, e.ConstValue(Value::Int(2))}}, factory_.Rel("R", 2));
  EXPECT_EQ(Run(ne).size(), 2u);
}

TEST_F(AlgebraTest, SelectWithFunctionCondition) {
  // select({times(@1,10) == @2}, R) keeps every R tuple.
  ExprFactory& e = factory_.exprs();
  const AlgExpr* plan = factory_.Select(
      {{e.Apply(ctx_.symbols().Intern("times"),
                std::vector<const ScalarExpr*>{
                    e.Col(0), e.ConstValue(Value::Int(10))}),
        AlgCompareOp::kEq, e.Col(1)}},
      factory_.Rel("R", 2));
  EXPECT_EQ(Run(plan).size(), 3u);
}

TEST_F(AlgebraTest, HashJoinOnColumns) {
  ExprFactory& e = factory_.exprs();
  // join({@2==@3}, R, S): R tuples whose second column appears in S.
  const AlgExpr* plan = factory_.Join({{e.Col(1), AlgCompareOp::kEq, e.Col(2)}},
                                      factory_.Rel("R", 2),
                                      factory_.Rel("S", 1));
  Relation out = Run(plan);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({Value::Int(1), Value::Int(10), Value::Int(10)}));
  EXPECT_EQ(AlgExprToString(ctx_, plan), "join({@2==@3}, R, S)");
}

TEST_F(AlgebraTest, NestedLoopJoinWithResidual) {
  ExprFactory& e = factory_.exprs();
  // Non-equi condition forces the nested-loop path.
  const AlgExpr* plan = factory_.Join({{e.Col(1), AlgCompareOp::kNe, e.Col(2)}},
                                      factory_.Rel("R", 2),
                                      factory_.Rel("S", 1));
  EXPECT_EQ(Run(plan).size(), 5u);  // 3*2 - 1 matching pair
}

TEST_F(AlgebraTest, JoinWithComputedKey) {
  ExprFactory& e = factory_.exprs();
  // join({times(@1,10)==@3}, R, S): hashable computed key on the left.
  const AlgExpr* plan = factory_.Join(
      {{e.Apply(ctx_.symbols().Intern("times"),
                std::vector<const ScalarExpr*>{
                    e.Col(0), e.ConstValue(Value::Int(10))}),
        AlgCompareOp::kEq, e.Col(2)}},
      factory_.Rel("R", 2), factory_.Rel("S", 1));
  EXPECT_EQ(Run(plan).size(), 1u);
}

TEST_F(AlgebraTest, ProductIsJoinWithNoConditions) {
  const AlgExpr* plan =
      factory_.Join({}, factory_.Rel("R", 2), factory_.Rel("S", 1));
  EXPECT_EQ(Run(plan).size(), 6u);
  EXPECT_EQ(plan->arity(), 3);
}

TEST_F(AlgebraTest, UnionAndDifference) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* first = factory_.Project({e.Col(0)}, factory_.Rel("R", 2));
  const AlgExpr* second = factory_.Rel("S", 1);
  EXPECT_EQ(Run(factory_.Union(first, second)).size(), 5u);
  Relation diff = Run(factory_.Diff(second, first));
  EXPECT_EQ(diff.size(), 2u);  // S values 10 and 99 not in {1,2,3}
}

TEST_F(AlgebraTest, UnitAndEmpty) {
  Relation unit = Run(factory_.Unit());
  EXPECT_EQ(unit.arity(), 0);
  EXPECT_EQ(unit.size(), 1u);
  Relation empty = Run(factory_.Empty(2));
  EXPECT_EQ(empty.arity(), 2);
  EXPECT_TRUE(empty.empty());
}

TEST_F(AlgebraTest, AdomComputesTermClosure) {
  const AlgExpr* adom = factory_.Adom(
      1, {ctx_.symbols().Intern("succ")}, {ctx_.InternConstant(
                                              Value::Int(500))});
  Relation out = Run(adom);
  // Base: {1,2,3,10,20,30,99,500} plus succ of each; succ(1)=2 and
  // succ(2)=3 already belong to the base, so 8 + 6 new values.
  EXPECT_EQ(out.size(), 14u);
  EXPECT_TRUE(out.Contains({Value::Int(501)}));
  EXPECT_TRUE(out.Contains({Value::Int(11)}));
}

TEST_F(AlgebraTest, ValidationRejectsUnknownNames) {
  const AlgExpr* bad_rel = factory_.Rel("NOPE", 1);
  EXPECT_FALSE(EvaluateAlgebra(ctx_, bad_rel, db_, registry_).ok());
  ExprFactory& e = factory_.exprs();
  const AlgExpr* bad_fn = factory_.Project(
      {e.Apply(ctx_.symbols().Intern("mystery"),
               std::vector<const ScalarExpr*>{e.Col(0)})},
      factory_.Rel("S", 1));
  EXPECT_FALSE(EvaluateAlgebra(ctx_, bad_fn, db_, registry_).ok());
  const AlgExpr* bad_arity = factory_.Rel("R", 3);
  EXPECT_FALSE(EvaluateAlgebra(ctx_, bad_arity, db_, registry_).ok());
}

TEST_F(AlgebraTest, RemapColumns) {
  ExprFactory& e = factory_.exprs();
  const ScalarExpr* expr = e.Apply(
      ctx_.symbols().Intern("plus"),
      std::vector<const ScalarExpr*>{e.Col(0), e.Col(2)});
  int map[] = {2, 1, 0};
  const ScalarExpr* remapped = e.RemapColumns(expr, map);
  EXPECT_EQ(ScalarExprToString(ctx_, remapped), "plus(@3,@1)");
  EXPECT_EQ(ExprFactory::MaxColumn(remapped), 2);
}

// --- optimizer ---

TEST_F(AlgebraTest, OptimizerDropsIdentityProject) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* r = factory_.Rel("R", 2);
  const AlgExpr* plan = factory_.Project({e.Col(0), e.Col(1)}, r);
  EXPECT_EQ(OptimizePlan(factory_, plan), r);
}

TEST_F(AlgebraTest, OptimizerComposesProjections) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* inner = factory_.Project(
      {e.Col(1), e.Col(0)}, factory_.Rel("R", 2));
  const AlgExpr* outer = factory_.Project({e.Col(1)}, inner);
  const AlgExpr* opt = OptimizePlan(factory_, outer);
  EXPECT_EQ(AlgExprToString(ctx_, opt), "project([@1], R)");
  EXPECT_EQ(Run(opt), Run(outer));
}

TEST_F(AlgebraTest, OptimizerEliminatesUnitJoin) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* join = factory_.Join(
      {{e.Col(0), AlgCompareOp::kEq, e.ConstValue(Value::Int(10))}}, factory_.Unit(),
      factory_.Rel("S", 1));
  const AlgExpr* opt = OptimizePlan(factory_, join);
  EXPECT_EQ(AlgExprToString(ctx_, opt), "select({@1==10}, S)");
  EXPECT_EQ(Run(opt), Run(join));
}

TEST_F(AlgebraTest, OptimizerPropagatesEmpty) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* plan = factory_.Project(
      {e.Col(0)},
      factory_.Join({}, factory_.Empty(1), factory_.Rel("S", 1)));
  const AlgExpr* opt = OptimizePlan(factory_, plan);
  EXPECT_EQ(opt->kind(), AlgKind::kEmpty);
  const AlgExpr* u = factory_.Union(factory_.Empty(1), factory_.Rel("S", 1));
  EXPECT_EQ(AlgExprToString(ctx_, OptimizePlan(factory_, u)), "S");
  const AlgExpr* d = factory_.Diff(factory_.Rel("S", 1), factory_.Empty(1));
  EXPECT_EQ(AlgExprToString(ctx_, OptimizePlan(factory_, d)), "S");
}

TEST_F(AlgebraTest, OptimizerMergesSelects) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* plan = factory_.Select(
      {{e.Col(0), AlgCompareOp::kNe, e.ConstValue(Value::Int(1))}},
      factory_.Select({{e.Col(1), AlgCompareOp::kEq, e.ConstValue(Value::Int(20))}},
                      factory_.Rel("R", 2)));
  const AlgExpr* opt = OptimizePlan(factory_, plan);
  EXPECT_EQ(opt->kind(), AlgKind::kSelect);
  EXPECT_EQ(opt->conds().size(), 2u);
  EXPECT_EQ(Run(opt), Run(plan));
}

TEST_F(AlgebraTest, TreePrinterShowsStructure) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* plan = factory_.Diff(
      factory_.Rel("S", 1), factory_.Project({e.Col(0)},
                                             factory_.Rel("R", 2)));
  std::string tree = AlgExprToTreeString(ctx_, plan);
  EXPECT_NE(tree.find("difference"), std::string::npos);
  EXPECT_NE(tree.find("  project"), std::string::npos);
}

TEST_F(AlgebraTest, OptimizerFoldsSelectIntoJoin) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* join =
      factory_.Join({}, factory_.Rel("R", 2), factory_.Rel("S", 1));
  const AlgExpr* plan = factory_.Select(
      {{e.Col(1), AlgCompareOp::kEq, e.Col(2)}}, join);
  const AlgExpr* opt = OptimizePlan(factory_, plan);
  ASSERT_EQ(opt->kind(), AlgKind::kJoin);
  EXPECT_EQ(opt->conds().size(), 1u);  // now a hash-join key
  EXPECT_EQ(Run(opt), Run(plan));
}

TEST_F(AlgebraTest, OptimizerPushesSelectThroughProject) {
  ExprFactory& e = factory_.exprs();
  const AlgExpr* proj = factory_.Project(
      {e.Col(1),
       e.Apply(ctx_.symbols().Intern("succ"),
               std::vector<const ScalarExpr*>{e.Col(0)})},
      factory_.Rel("R", 2));
  const AlgExpr* plan = factory_.Select(
      {{e.Col(0), AlgCompareOp::kEq, e.ConstValue(Value::Int(20))}}, proj);
  const AlgExpr* opt = OptimizePlan(factory_, plan);
  // The selection moves below: project([...], select({@2==20}, R)).
  ASSERT_EQ(opt->kind(), AlgKind::kProject);
  EXPECT_EQ(opt->input()->kind(), AlgKind::kSelect);
  EXPECT_EQ(Run(opt), Run(plan));
  ASSERT_EQ(Run(opt).size(), 1u);
}

TEST_F(AlgebraTest, StatsCountWork) {
  AlgebraEvalStats stats;
  const AlgExpr* plan =
      factory_.Join({}, factory_.Rel("R", 2), factory_.Rel("S", 1));
  ASSERT_TRUE(EvaluateAlgebra(ctx_, plan, db_, registry_, &stats).ok());
  EXPECT_EQ(stats.tuples_produced, 3u + 2u + 6u);  // scans + join output
}

}  // namespace
}  // namespace emcalc
