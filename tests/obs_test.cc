// Tests for the observability subsystem (src/obs/): span tracer, metrics
// registry, compile profiling, query log — plus the end-to-end acceptance
// check that a single trace captures both compile-phase and per-operator
// execution spans.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/string_pool.h"
#include "src/base/thread_pool.h"
#include "src/base/value.h"
#include "src/core/compiler.h"
#include "src/obs/compile_profile.h"
#include "src/obs/inspect.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/trace.h"
#include "src/storage/csv.h"

namespace emcalc {
namespace {

// Installs `tracer` for the test's scope; restores the previous tracer.
class ScopedTracer {
 public:
  explicit ScopedTracer(obs::Tracer* tracer) : saved_(obs::GetTracer()) {
    obs::SetTracer(tracer);
  }
  ~ScopedTracer() { obs::SetTracer(saved_); }

 private:
  obs::Tracer* saved_;
};

TEST(TraceTest, DisabledSpanIsInert) {
  ScopedTracer scope(nullptr);
  obs::Span span("test.disabled");
  EXPECT_FALSE(span.enabled());
  span.SetDetail("ignored");  // must not crash or allocate into a tracer
}

TEST(TraceTest, SpansRecordNamesDetailsAndNesting) {
  obs::Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    obs::Span outer("test.outer");
    {
      obs::Span inner("test.inner");
      ASSERT_TRUE(inner.enabled());
      inner.SetDetail("rows=3");
    }
  }
  std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner destructs first, so it is recorded first.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].detail, "rows=3");
  EXPECT_STREQ(events[1].name, "test.outer");
  // Time containment: inner lies within [outer.start, outer.end].
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(TraceTest, ConcurrentSpansNestPerThread) {
  obs::Tracer tracer;
  ScopedTracer scope(&tracer);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      obs::Span outer("test.thread_outer");
      for (int i = 0; i < 2; ++i) {
        obs::Span inner("test.thread_inner");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * 3));
  // Group by thread: each thread contributes one outer and two inner
  // events, and the inners are time-contained in that thread's outer.
  std::map<uint32_t, std::vector<const obs::TraceEvent*>> by_tid;
  for (const obs::TraceEvent& e : events) by_tid[e.tid].push_back(&e);
  ASSERT_EQ(by_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, own] : by_tid) {
    ASSERT_EQ(own.size(), 3u);
    const obs::TraceEvent* outer = nullptr;
    for (const obs::TraceEvent* e : own) {
      if (std::string(e->name) == "test.thread_outer") outer = e;
    }
    ASSERT_NE(outer, nullptr);
    for (const obs::TraceEvent* e : own) {
      if (e == outer) continue;
      EXPECT_STREQ(e->name, "test.thread_inner");
      EXPECT_GE(e->start_ns, outer->start_ns);
      EXPECT_LE(e->start_ns + e->dur_ns, outer->start_ns + outer->dur_ns);
    }
  }
}

TEST(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  obs::Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    obs::Span span("test.escaped");
    span.SetDetail("quote=\" backslash=\\ newline=\n");
  }
  { obs::Span span("test.plain"); }

  std::string json = tracer.ToChromeTraceJson();
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << json;
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  std::set<std::string> names;
  for (const obs::JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    names.insert(e.StringOr("name", ""));
    EXPECT_EQ(e.StringOr("ph", ""), "X");
    EXPECT_EQ(e.NumberOr("pid", -1), 1);
    EXPECT_NE(e.Find("ts"), nullptr);
    EXPECT_NE(e.Find("dur"), nullptr);
  }
  EXPECT_TRUE(names.count("test.escaped"));
  EXPECT_TRUE(names.count("test.plain"));
  // The escaped detail survives the JSON round-trip.
  for (const obs::JsonValue& e : events->array) {
    if (e.StringOr("name", "") != "test.escaped") continue;
    const obs::JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->StringOr("detail", ""),
              "quote=\" backslash=\\ newline=\n");
  }
}

TEST(MetricsTest, CountersAndGauges) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  obs::Counter& c = reg.GetCounter("test.counter");
  c.Reset();
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same object.
  EXPECT_EQ(&reg.GetCounter("test.counter"), &c);

  obs::Gauge& g = reg.GetGauge("test.gauge");
  g.Set(7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(MetricsTest, HistogramPercentilesAreExactOnBucketBounds) {
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(i);
  obs::Histogram h(bounds);
  // One observation at each bound: Percentile(p) must return exactly p.
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1), 1.0);
}

TEST(MetricsTest, HistogramOverflowBucketReportsMax) {
  obs::Histogram h({10.0, 20.0});
  h.Observe(5);
  h.Observe(1000);  // overflow
  std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
}

TEST(MetricsTest, SnapshotsAreWellFormed) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  reg.GetCounter("test.snapshot_counter").Add(5);
  reg.GetHistogram("test.snapshot_hist").Observe(1500.0);

  std::string text = reg.TextSnapshot();
  EXPECT_NE(text.find("test.snapshot_counter"), std::string::npos);
  EXPECT_NE(text.find("test.snapshot_hist"), std::string::npos);

  auto doc = obs::ParseJson(reg.JsonSnapshot());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->Find("test.snapshot_counter"), nullptr);
  const obs::JsonValue* hists = doc->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::JsonValue* hist = hists->Find("test.snapshot_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->NumberOr("count", 0), 1.0);
}

TEST(MetricsTest, GaugeUpdateMaxIsMonotone) {
  obs::Gauge g;
  g.UpdateMax(10);
  EXPECT_EQ(g.value(), 10);
  g.UpdateMax(3);  // never lowers
  EXPECT_EQ(g.value(), 10);
  g.UpdateMax(25);
  EXPECT_EQ(g.value(), 25);
}

TEST(MetricsTest, GaugeUpdateMaxKeepsGlobalMaxUnderConcurrency) {
  obs::Gauge g;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      // Interleaved ranges so every thread repeatedly races a smaller
      // value against another thread's larger one.
      for (int64_t i = 0; i < kPerThread; ++i) {
        g.UpdateMax(i * kThreads + t);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.value(), (kPerThread - 1) * kThreads + (kThreads - 1));
}

TEST(MetricsTest, HistogramSnapshotIsSelfConsistentUnderConcurrency) {
  obs::Histogram h({10.0, 100.0, 1000.0});
  std::atomic<bool> stop{false};
  // Writers observe in (sum == 111 * count)-preserving batches; a third
  // thread resets. Any snapshot interleaving with them must still satisfy
  // the struct's invariants — the per-accessor-lock reads this replaced
  // could observe a count from one state and a sum from another.
  auto writer = [&h, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      h.Observe(5);
      h.Observe(50);
      h.Observe(56);
    }
  };
  std::thread w1(writer), w2(writer);
  std::thread resetter([&h, &stop] {
    while (!stop.load(std::memory_order_relaxed)) h.Reset();
  });
  for (int i = 0; i < 20'000; ++i) {
    obs::Histogram::Snapshot snap = h.TakeSnapshot();
    uint64_t bucket_total = 0;
    for (uint64_t c : snap.counts) bucket_total += c;
    ASSERT_EQ(bucket_total, snap.count);
    if (snap.count == 0) {
      ASSERT_EQ(snap.sum, 0.0);
    } else {
      // Observations arrive in batches summing to 111; partial batches
      // keep the average within the batch's value range.
      ASSERT_GE(snap.sum, 5.0 * static_cast<double>(snap.count));
      ASSERT_LE(snap.sum, 56.0 * static_cast<double>(snap.count));
      // Percentiles report bucket upper bounds: 5 lands in the ≤10
      // bucket, 50 and 56 in the ≤100 bucket.
      double p50 = h.PercentileOf(snap, 50);
      ASSERT_TRUE(p50 == 10.0 || p50 == 100.0) << p50;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  w1.join();
  w2.join();
  resetter.join();
}

TEST(MetricsTest, StringPoolBytesGaugeTracksInterning) {
  obs::Gauge& gauge =
      obs::MetricsRegistry::Instance().GetGauge("storage.string_pool_bytes");
  int64_t before = gauge.value();
  // A fresh never-interned string must grow the pool and the gauge.
  Value::Str("obs_test.string_pool_bytes.sentinel.value-1");
  EXPECT_GT(gauge.value(), before);
  EXPECT_EQ(static_cast<uint64_t>(gauge.value()),
            StringPool::Global().bytes());
  // Re-interning the same string is free.
  int64_t after = gauge.value();
  Value::Str("obs_test.string_pool_bytes.sentinel.value-1");
  EXPECT_EQ(gauge.value(), after);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::ParseJson("").ok());
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("{}extra").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\":}").ok());
  EXPECT_TRUE(obs::ParseJson("{\"a\":[1,2.5,\"s\",true,null]}").ok());
}

TEST(QueryLogTest, RecordRoundTripsThroughJson) {
  obs::QueryLogRecord r;
  r.event = "compile";
  r.query = "{x | R(x) and \"quoted\"}";
  r.query_hash = obs::HashQueryText(r.query);
  r.ok = false;
  r.error = "NOT_SAFE: unbounded variable";
  r.em_allowed = false;
  r.level = 3;
  r.find_count = 4;
  r.ranf_size = 17;
  r.plan_nodes = 9;
  r.rows_out = 0;
  r.wall_ns = 123456;
  r.string_pool_size = 42;
  r.exec_threads = 8;
  r.phase_ns = {{"parse", 1000}, {"translate.safety", 2500}};

  std::string line = obs::QueryLogRecordToJson(r);
  auto parsed = obs::ParseQueryLogRecord(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  EXPECT_EQ(parsed->event, r.event);
  EXPECT_EQ(parsed->query, r.query);
  EXPECT_EQ(parsed->query_hash, r.query_hash);
  EXPECT_EQ(parsed->ok, r.ok);
  EXPECT_EQ(parsed->error, r.error);
  EXPECT_EQ(parsed->em_allowed, r.em_allowed);
  EXPECT_EQ(parsed->level, r.level);
  EXPECT_EQ(parsed->find_count, r.find_count);
  EXPECT_EQ(parsed->ranf_size, r.ranf_size);
  EXPECT_EQ(parsed->plan_nodes, r.plan_nodes);
  EXPECT_EQ(parsed->wall_ns, r.wall_ns);
  EXPECT_EQ(parsed->string_pool_size, r.string_pool_size);
  EXPECT_EQ(parsed->phase_ns, r.phase_ns);
  // exec_threads only travels on "run" records.
  r.event = "run";
  auto run = obs::ParseQueryLogRecord(obs::QueryLogRecordToJson(r));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->exec_threads, r.exec_threads);
}

TEST(QueryLogTest, HashIsStableFnv1a) {
  // FNV-1a offset basis for the empty string; fixed across platforms.
  EXPECT_EQ(obs::HashQueryText(""), 14695981039346656037ULL);
  EXPECT_EQ(obs::HashQueryText("abc"), obs::HashQueryText("abc"));
  EXPECT_NE(obs::HashQueryText("abc"), obs::HashQueryText("abd"));
}

TEST(QueryLogTest, SinkEmitsOneValidJsonObjectPerLine) {
  std::ostringstream out;
  obs::QueryLog log(&out);
  obs::QueryLogRecord r;
  r.event = "run";
  r.query = "{x | R(x)}";
  r.rows_out = 2;
  log.Write(r);
  r.rows_out = 5;
  log.Write(r);

  std::istringstream in(out.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    auto doc = obs::ParseJson(line);
    ASSERT_TRUE(doc.ok()) << line;
    EXPECT_EQ(doc->StringOr("event", ""), "run");
  }
  EXPECT_EQ(lines, 2);
}

TEST(CompileProfileTest, PhaseTimerBuildsTreeAndRenders) {
  obs::CompilePhase root;
  root.name = "compile";
  {
    obs::PhaseTimer parse(&root, "parse", "test.compile.parse");
  }
  {
    obs::PhaseTimer translate(&root, "translate", "test.compile.translate");
    obs::PhaseTimer safety(translate.phase(), "safety", "test.compile.safety");
    safety.SetDetail("em-allowed finds=2");
  }
  root.wall_ns = obs::ChildWallNs(root) + 10;

  ASSERT_NE(root.Find("parse"), nullptr);
  const obs::CompilePhase* translate = root.Find("translate");
  ASSERT_NE(translate, nullptr);
  const obs::CompilePhase* safety = translate->Find("safety");
  ASSERT_NE(safety, nullptr);
  EXPECT_EQ(safety->detail, "em-allowed finds=2");
  EXPECT_LE(obs::ChildWallNs(*translate), translate->wall_ns);

  std::string rendered = obs::CompileProfileToString(root);
  EXPECT_NE(rendered.find("parse"), std::string::npos);
  EXPECT_NE(rendered.find("safety"), std::string::npos);
  EXPECT_NE(rendered.find("em-allowed finds=2"), std::string::npos);

  auto flat = obs::FlattenPhases(root);
  std::vector<std::string> paths;
  for (const auto& [path, ns] : flat) paths.push_back(path);
  EXPECT_NE(std::find(paths.begin(), paths.end(), "parse"), paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(), "translate.safety"),
            paths.end());
}

// --- End-to-end: the ISSUE acceptance criteria. ---

class ObsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(LoadCsvText(db_, "EDGE", "1,2\n2,3\n3,1\n").ok());
  }

  Compiler compiler_;
  Database db_;
};

TEST_F(ObsEndToEndTest, SingleTraceContainsCompileAndExecSpans) {
  obs::Tracer tracer;
  ScopedTracer scope(&tracer);

  auto q = compiler_.Compile("{x | exists y (EDGE(x, y) and EDGE(y, x))}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto answer = q->Run(db_);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();

  std::set<std::string> names;
  for (const obs::TraceEvent& e : tracer.Snapshot()) names.insert(e.name);
  // Compile-phase spans...
  for (const char* expected :
       {"compile", "compile.parse", "compile.translate", "compile.rectify",
        "compile.safety", "compile.enf", "compile.ranf",
        "compile.algebra_gen", "compile.optimize", "compile.lower",
        "safety.em_allowed", "finds.bd", "algebra.optimize", "exec.lower"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
  }
  // ...and per-operator execution spans in the same trace.
  EXPECT_TRUE(names.count("exec.run"));
  EXPECT_TRUE(names.count("exec.execute"));
  EXPECT_TRUE(names.count("Scan")) << "no per-operator span recorded";

  // The whole trace exports as valid Chrome trace JSON.
  auto doc = obs::ParseJson(tracer.ToChromeTraceJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), tracer.size());
}

TEST_F(ObsEndToEndTest, ExplainCompilePhasesCoverTotalWall) {
  // Phase durations must account for (nearly) the whole compile: take the
  // best coverage over several compiles to keep the check robust against
  // scheduler noise on a microsecond-scale measurement.
  double best = 0;
  for (int i = 0; i < 10; ++i) {
    auto q = compiler_.Compile(
        "{x | exists y (EDGE(x, y) and not exists z (EDGE(y, z) and "
        "EDGE(z, x)))}");
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    const obs::CompilePhase& profile = q->compile_profile();
    ASSERT_GT(profile.wall_ns, 0u);
    double coverage = static_cast<double>(obs::ChildWallNs(profile)) /
                      static_cast<double>(profile.wall_ns);
    EXPECT_LE(coverage, 1.0 + 1e-9);
    best = std::max(best, coverage);
  }
  EXPECT_GE(best, 0.9) << "compile phases account for <90% of wall time";

  auto q = compiler_.Compile("{x | exists y (EDGE(x, y))}");
  ASSERT_TRUE(q.ok());
  std::string report = q->ExplainCompile();
  for (const char* phase : {"parse", "translate", "safety", "enf", "ranf",
                            "algebra_gen", "optimize", "lower"}) {
    EXPECT_NE(report.find(phase), std::string::npos)
        << "ExplainCompile missing phase: " << phase << "\n" << report;
  }
}

TEST_F(ObsEndToEndTest, QueryLogRecordsCompileAndRunWithSharedHash) {
  std::ostringstream out;
  obs::QueryLog log(&out);
  obs::QueryLog* saved = obs::GetQueryLog();
  obs::SetQueryLog(&log);

  const std::string text = "{x | exists y (EDGE(x, y))}";
  auto q = compiler_.Compile(text);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->Run(db_).ok());
  // A rejected query logs a failed compile record.
  auto bad = compiler_.Compile("{x | not EDGE(x, x)}");
  EXPECT_FALSE(bad.ok());
  obs::SetQueryLog(saved);

  std::vector<obs::QueryLogRecord> records;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    auto r = obs::ParseQueryLogRecord(line);
    ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << line;
    records.push_back(*std::move(r));
  }
  ASSERT_EQ(records.size(), 3u);

  EXPECT_EQ(records[0].event, "compile");
  EXPECT_TRUE(records[0].ok);
  EXPECT_TRUE(records[0].em_allowed);
  EXPECT_GT(records[0].plan_nodes, 0);
  EXPECT_GT(records[0].wall_ns, 0u);
  EXPECT_FALSE(records[0].phase_ns.empty());
  EXPECT_EQ(records[0].query_hash, obs::HashQueryText(text));

  EXPECT_EQ(records[1].event, "run");
  EXPECT_TRUE(records[1].ok);
  EXPECT_EQ(records[1].rows_out, 3u);  // every EDGE node has a successor
  EXPECT_EQ(records[1].query_hash, records[0].query_hash);
  EXPECT_GE(records[1].exec_threads, 1u);  // 0 = hardware is resolved

  EXPECT_EQ(records[2].event, "compile");
  EXPECT_FALSE(records[2].ok);
  EXPECT_FALSE(records[2].em_allowed);
  EXPECT_FALSE(records[2].error.empty());
}

TEST(MetricsTest, PrometheusExpositionRendersAllMetricKinds) {
  auto& reg = obs::MetricsRegistry::Instance();
  reg.GetCounter("promtest.runs").Add(3);
  reg.GetGauge("promtest.depth").Set(-7);
  obs::Histogram& h = reg.GetHistogram("promtest.lat_ns", {10.0, 100.0});
  h.Observe(5);
  h.Observe(50);
  h.Observe(500);

  std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("# TYPE emcalc_promtest_runs counter\n"
                     "emcalc_promtest_runs 3\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE emcalc_promtest_depth gauge\n"
                     "emcalc_promtest_depth -7\n"),
            std::string::npos)
      << out;
  // Buckets are cumulative and end with the +Inf catch-all == _count.
  EXPECT_NE(out.find("# TYPE emcalc_promtest_lat_ns histogram\n"
                     "emcalc_promtest_lat_ns_bucket{le=\"10\"} 1\n"
                     "emcalc_promtest_lat_ns_bucket{le=\"100\"} 2\n"
                     "emcalc_promtest_lat_ns_bucket{le=\"+Inf\"} 3\n"
                     "emcalc_promtest_lat_ns_sum 555\n"
                     "emcalc_promtest_lat_ns_count 3\n"),
            std::string::npos)
      << out;
  h.Reset();
  reg.GetCounter("promtest.runs").Reset();
  reg.GetGauge("promtest.depth").Reset();
}

// File-mode query log: buffering, urgent flush on failed runs, rotation.
class QueryLogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "emcalc_qlog_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/query_log.jsonl";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  static obs::QueryLogRecord RunRecord(const std::string& query, bool ok,
                                       const std::string& aborted_limit) {
    obs::QueryLogRecord r;
    r.event = "run";
    r.query = query;
    r.query_hash = obs::HashQueryText(query);
    r.ok = ok;
    r.aborted_limit = aborted_limit;
    if (!ok) r.error = "RESOURCE_EXHAUSTED: " + aborted_limit + " exceeded";
    return r;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(QueryLogFileTest, AbortRecordsBypassTheBuffer) {
  auto log = obs::QueryLog::Open(path_);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  (*log)->Write(RunRecord("{x | A(x)}", true, ""));
  // A healthy record is buffered; nothing on disk yet.
  EXPECT_EQ(ReadAll(path_), "");
  (*log)->Write(RunRecord("{x | B(x)}", false, "max_bytes"));
  // The abort flushed the buffer: both lines are on disk immediately.
  std::string on_disk = ReadAll(path_);
  EXPECT_NE(on_disk.find("\"query\":\"{x | A(x)}\""), std::string::npos);
  EXPECT_NE(on_disk.find("\"aborted_limit\":\"max_bytes\""),
            std::string::npos);
}

TEST_F(QueryLogFileTest, TrySignalFlushDrainsTheBuffer) {
  auto log = obs::QueryLog::Open(path_);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  (*log)->Write(RunRecord("{x | A(x)}", true, ""));
  EXPECT_EQ(ReadAll(path_), "");
  EXPECT_TRUE((*log)->TrySignalFlush());
  EXPECT_NE(ReadAll(path_).find("\"query\":\"{x | A(x)}\""),
            std::string::npos);
}

TEST_F(QueryLogFileTest, RotatesToDotOneAtSizeCap) {
  auto log = obs::QueryLog::Open(path_);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  (*log)->SetRotationMaxBytes(512);
  constexpr int kRecords = 40;
  for (int i = 0; i < kRecords; ++i) {
    (*log)->Write(RunRecord("{x | R" + std::to_string(i) + "(x)}", true, ""));
    (*log)->Flush();
  }
  EXPECT_GE((*log)->rotations(), 1u);
  ASSERT_TRUE(std::filesystem::exists(path_ + ".1"));
  log->reset();  // final flush
  // No record was lost across rotations: every line in the live file plus
  // the newest rotation parses, and the newest record is present.
  obs::QueryLogScan live = obs::ParseQueryLogText(ReadAll(path_));
  obs::QueryLogScan rotated = obs::ParseQueryLogText(ReadAll(path_ + ".1"));
  EXPECT_EQ(live.bad_lines + rotated.bad_lines, 0u);
  EXPECT_GT(rotated.records.size(), 0u);
  bool newest_present = false;
  for (const auto& r : live.records) {
    if (r.query == "{x | R39(x)}") newest_present = true;
  }
  for (const auto& r : rotated.records) {
    if (r.query == "{x | R39(x)}") newest_present = true;
  }
  EXPECT_TRUE(newest_present);
}

TEST_F(QueryLogFileTest, EnvCapAppliesAtOpen) {
  setenv("EMCALC_QUERY_LOG_MAX_BYTES", "256", 1);
  auto log = obs::QueryLog::Open(path_);
  unsetenv("EMCALC_QUERY_LOG_MAX_BYTES");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  for (int i = 0; i < 20; ++i) {
    (*log)->Write(RunRecord("{x | R" + std::to_string(i) + "(x)}", true, ""));
    (*log)->Flush();
  }
  EXPECT_GE((*log)->rotations(), 1u);
  EXPECT_TRUE(std::filesystem::exists(path_ + ".1"));
}

TEST(ThreadPoolTelemetryTest, RegionStatsCountMorselsAndBusyTime) {
  ThreadPool::RegionStats stats;
  std::atomic<uint64_t> sum{0};
  ThreadPool::Global().ParallelFor(
      /*total=*/10'000, /*grain=*/256, /*max_workers=*/4,
      [&](size_t /*worker*/, size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      },
      &stats);
  EXPECT_EQ(sum.load(), 10'000ull * 9'999 / 2);
  EXPECT_GT(stats.wall_ns, 0u);
  EXPECT_GT(stats.busy_ns, 0u);
  EXPECT_EQ(stats.morsels, (10'000u + 255) / 256);
  EXPECT_GE(stats.max_workers, 1u);
}

TEST(ThreadPoolTelemetryTest, WorkerTelemetryAccumulatesAndRendersAsJson) {
  if (ThreadPool::Global().parallelism() <= 1) {
    // Single-core box without EMCALC_HARDWARE_THREADS: the pool has no
    // workers and every region inlines. The TSAN CI leg pins 4 threads.
    GTEST_SKIP() << "thread pool has no workers";
  }
  // The caller drains morsels alongside the workers, so one region may
  // finish before any pool thread wakes; repeat until a worker shows up.
  uint64_t worker_morsels = 0;
  for (int attempt = 0; attempt < 100 && worker_morsels == 0; ++attempt) {
    ThreadPool::Global().ParallelFor(
        /*total=*/100'000, /*grain=*/64, /*max_workers=*/4,
        [](size_t /*worker*/, size_t begin, size_t end) {
          volatile uint64_t sink = 0;
          for (size_t i = begin; i < end; ++i) sink += i;
        });
    worker_morsels = 0;
    for (const ThreadPool::WorkerTelemetry& w :
         ThreadPool::Global().Telemetry()) {
      worker_morsels += w.morsels;
    }
  }
  EXPECT_GT(worker_morsels, 0u);

  auto json = obs::ParseJson(ThreadPool::GlobalTelemetryJson());
  ASSERT_TRUE(json.ok()) << ThreadPool::GlobalTelemetryJson();
  EXPECT_GT(json->NumberOr("parallelism", 0), 0);
  const obs::JsonValue* workers = json->Find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_TRUE(workers->is_array());
  ASSERT_FALSE(workers->array.empty());
  uint64_t json_morsels = 0;
  for (const obs::JsonValue& w : workers->array) {
    json_morsels += static_cast<uint64_t>(w.NumberOr("morsels", 0));
    EXPECT_GE(w.NumberOr("busy_ns", -1), 0);
    EXPECT_GE(w.NumberOr("idle_ns", -1), 0);
    EXPECT_GE(w.NumberOr("regions", -1), 0);
  }
  EXPECT_GE(json_morsels, worker_morsels);
}

TEST_F(ObsEndToEndTest, ParameterizedQueryProfileParity) {
  auto q = compiler_.CompileParameterized("{y | EDGE(p, y)}", {"p"});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ExecProfile profile;
  auto r = q->RunWithProfile(db_, {Value::Int(1)}, &profile);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 1u);
  EXPECT_GT(profile.stats.wall_ns, 0u);

  auto analyzed = q->ExplainAnalyze(db_, {Value::Int(1)});
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->find("rows"), std::string::npos);
}

}  // namespace
}  // namespace emcalc
