// The stage-boundary verifier's own tests:
//
//  - mutation harness: every seeded single-node corruption from
//    src/verify/mutate.h, applied to corpus and synthetic plans, must be
//    rejected with the mutation's expected rule id (the rules have teeth);
//  - fuzz: hundreds of random em-allowed queries must verify clean at all
//    five stage boundaries with verification forced on (no false alarms);
//  - targeted negative cases for the calculus/formula rules that the plan
//    mutators cannot reach (arity conflicts, shadowing, missing spans);
//  - report plumbing: Status round-trip into query-log diagnostics.
#include <gtest/gtest.h>

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/algebra/ast.h"
#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/compiler.h"
#include "src/core/random_query.h"
#include "src/exec/lower.h"
#include "src/translate/pipeline.h"
#include "src/verify/mutate.h"
#include "src/verify/verify.h"

namespace emcalc::verify {
namespace {

// Restores the environment/build-type default on scope exit.
struct ScopedVerify {
  explicit ScopedVerify(int mode) { ForceEnabled(mode); }
  ~ScopedVerify() { ForceEnabled(-1); }
};

FunctionRegistry TestFunctions() {
  FunctionRegistry reg = BuiltinFunctions();
  auto mod_fn = [](int64_t mul, int64_t add) {
    return [mul, add](std::span<const Value> a) {
      int64_t n = a[0].is_int() ? a[0].AsInt() : 17;
      return Value::Int((n * mul + add) % 7);
    };
  };
  reg.Register("f", 1, mod_fn(1, 1));
  reg.Register("g", 1, mod_fn(2, 0));
  reg.Register("h", 1, mod_fn(3, 2));
  reg.Register("k", 1, mod_fn(1, 4));
  // The random generator's function pool.
  reg.Register("rf0", 1, mod_fn(1, 1));
  reg.Register("rf1", 2, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 0;
    int64_t m = a[1].is_int() ? a[1].AsInt() : 0;
    return Value::Int((n * 2 + m) % 7);
  });
  return reg;
}

// Queries chosen so every mutation has at least one applicable plan:
// projections, selections, hash and nested-loop joins (equal and unequal
// operand arities), unions, differences (whose shared context subplan
// lowers to a Materialize), and scalar-function applications.
const char* kQueries[] = {
    "{y | exists x (R(x) and y = g(f(x)))}",
    "{x | R(x) and exists y (f(x) = y and not R(y))}",
    "{x, y | (R(x) and f(x) = y) or (S(y) and g(y) = x)}",
    "{x, y, z | R(x, y, z) and not S(y, z)}",
    "{x | R(x) and x < 4}",
    "{x, y | R(x) and S(y) and x < y}",
    "{x, y, z | T(x, y) and R(z) and x = z}",
};

// Plans the translator cannot be coaxed into from these queries: a kUnit
// leaf under a join, and two distinct shared subtrees (two Materializes).
std::vector<const AlgExpr*> SyntheticPlans(AstContext& ctx) {
  AlgebraFactory factory(ctx);
  std::vector<const AlgExpr*> plans;
  plans.push_back(
      factory.Join({}, factory.Unit(), factory.Rel("R", 1)));
  const AlgExpr* a = factory.Rel("R", 1);
  const AlgExpr* b = factory.Rel("S", 1);
  plans.push_back(factory.Join({}, factory.Union(a, a),
                               factory.Union(b, b)));
  return plans;
}

// Translated (optimized) plans for kQueries, built into `ctx`.
std::vector<const AlgExpr*> CorpusPlans(AstContext& ctx) {
  std::vector<const AlgExpr*> plans;
  for (const char* text : kQueries) {
    auto q = ParseQuery(ctx, text);
    EXPECT_TRUE(q.ok()) << text;
    if (!q.ok()) continue;
    auto t = TranslateQuery(ctx, *q);
    EXPECT_TRUE(t.ok()) << text << ": " << t.status().ToString();
    if (t.ok()) plans.push_back(t->plan);
  }
  return plans;
}

void ForEachMutation(const std::function<void(Mutation)>& fn) {
  for (int m = static_cast<int>(kFirstMutation);
       m <= static_cast<int>(kLastMutation); ++m) {
    fn(static_cast<Mutation>(m));
  }
}

TEST(VerifyMutationTest, EveryAlgebraMutationIsCaughtWithItsRule) {
  ScopedVerify off(0);  // mutants must not trip checks inside lowering etc.
  AstContext ctx;
  std::vector<const AlgExpr*> plans = CorpusPlans(ctx);
  for (const AlgExpr* p : SyntheticPlans(ctx)) plans.push_back(p);

  // Baseline: every clean plan verifies clean.
  for (const AlgExpr* plan : plans) {
    AlgebraOptions opts;
    opts.stage = Stage::kOptimizedAlgebra;
    VerifyReport clean = VerifyAlgebra(ctx, plan, opts);
    EXPECT_TRUE(clean.ok()) << clean.ToString();
  }

  ForEachMutation([&](Mutation m) {
    if (IsPhysicalMutation(m)) return;
    int applicable = 0;
    for (const AlgExpr* plan : plans) {
      PlanMutator mutator(ctx);
      const AlgExpr* bad = mutator.Corrupt(plan, m);
      if (bad == nullptr) continue;  // no applicable node in this plan
      ++applicable;
      AlgebraOptions opts;
      opts.stage = Stage::kOptimizedAlgebra;
      VerifyReport report = VerifyAlgebra(ctx, bad, opts);
      EXPECT_FALSE(report.ok())
          << MutationName(m) << " on " << AlgExprToString(ctx, plan);
      EXPECT_TRUE(report.Has(ExpectedRule(m)))
          << MutationName(m) << " expected rule " << ExpectedRule(m)
          << " but got:\n" << report.ToString();
    }
    EXPECT_GE(applicable, 1)
        << MutationName(m) << " applied to no plan in the corpus";
  });
}

TEST(VerifyMutationTest, EveryPhysicalMutationIsCaughtWithItsRule) {
  ScopedVerify off(0);  // corrupt plans by hand, verify explicitly
  AstContext ctx;
  FunctionRegistry registry = TestFunctions();
  std::vector<const AlgExpr*> plans = CorpusPlans(ctx);
  for (const AlgExpr* p : SyntheticPlans(ctx)) plans.push_back(p);

  ForEachMutation([&](Mutation m) {
    if (!IsPhysicalMutation(m)) return;
    int applicable = 0;
    for (const AlgExpr* plan : plans) {
      auto lowered = Lower(ctx, plan, registry);
      ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
      // Baseline: the untouched lowering verifies clean.
      VerifyReport clean = VerifyPhysical(*lowered, plan);
      ASSERT_TRUE(clean.ok()) << clean.ToString();
      PlanMutator mutator(ctx);
      if (!mutator.Corrupt(*lowered, m)) continue;
      ++applicable;
      VerifyReport report = VerifyPhysical(*lowered, plan);
      EXPECT_FALSE(report.ok())
          << MutationName(m) << " on " << AlgExprToString(ctx, plan);
      EXPECT_TRUE(report.Has(ExpectedRule(m)))
          << MutationName(m) << " expected rule " << ExpectedRule(m)
          << " but got:\n" << report.ToString();
    }
    EXPECT_GE(applicable, 1)
        << MutationName(m) << " applied to no plan in the corpus";
  });
}

TEST(VerifyFuzzTest, RandomValidQueriesVerifyCleanAtEveryStage) {
  // With verification forced on, TranslateQuery checks stages 2-4 inline
  // and Lower checks stage 5; a violation fails the call. Stage 1 and the
  // explicit algebra/physical reports are checked directly as well.
  ScopedVerify on(1);
  AstContext ctx;
  RandomQueryGen gen(ctx, 20260809);
  FunctionRegistry registry = TestFunctions();
  int verified = 0;
  for (int i = 0; i < 5000 && verified < 500; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    std::string text = QueryToString(ctx, *q);
    VerifyReport calc = VerifyCalculus(ctx, *q, /*require_spans=*/false);
    EXPECT_TRUE(calc.ok()) << text << "\n" << calc.ToString();
    auto t = TranslateQuery(ctx, *q);
    if (!t.ok()) {
      // The RANF ordering heuristic rejects a few em-allowed shapes; that
      // is a translator limitation, not a verifier violation — but a
      // failure carrying a verification report IS a verifier bug.
      EXPECT_TRUE(DiagnosticsFromStatus(t.status()).empty())
          << text << ": " << t.status().ToString();
      continue;
    }
    auto lowered = Lower(ctx, t->plan, registry);
    ASSERT_TRUE(lowered.ok()) << text << ": " << lowered.status().ToString();
    AlgebraOptions opts;
    opts.stage = Stage::kOptimizedAlgebra;
    opts.expected_arity = static_cast<int>(q->head.size());
    VerifyReport alg = VerifyAlgebra(ctx, t->plan, opts);
    EXPECT_TRUE(alg.ok()) << text << "\n" << alg.ToString();
    VerifyReport phys = VerifyPhysical(*lowered, t->plan);
    EXPECT_TRUE(phys.ok()) << text << "\n" << phys.ToString();
    ++verified;
  }
  EXPECT_EQ(verified, 500);
}

// --- stage 1/2 rules the plan mutators cannot reach ---

TEST(VerifyCalculusTest, InconsistentRelationArityIsRejected) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | R(x) and exists y (R(x, y))}");
  ASSERT_TRUE(q.ok());
  VerifyReport report = VerifyCalculus(ctx, *q, /*require_spans=*/true);
  EXPECT_TRUE(report.Has("form.rel-arity")) << report.ToString();
}

TEST(VerifyCalculusTest, InconsistentFunctionArityIsRejected) {
  AstContext ctx;
  auto q = ParseQuery(
      ctx, "{x, y | R(x) and y = f(x) and exists z (S(z) and y = f(x, z))}");
  ASSERT_TRUE(q.ok());
  VerifyReport report = VerifyCalculus(ctx, *q, /*require_spans=*/true);
  EXPECT_TRUE(report.Has("form.fn-arity")) << report.ToString();
}

TEST(VerifyCalculusTest, HeadRulesFireOnDupAndNonFreeVariables) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | R(x)}");
  ASSERT_TRUE(q.ok());
  Symbol x = ctx.symbols().Intern("x");
  Symbol z = ctx.symbols().Intern("z");
  Query dup{{x, x}, q->body};
  EXPECT_TRUE(VerifyCalculus(ctx, dup, false).Has("calc.head-dup"));
  Query not_free{{x, z}, q->body};
  EXPECT_TRUE(VerifyCalculus(ctx, not_free, false).Has("calc.head-free"));
}

TEST(VerifyCalculusTest, SpanCoverageIsRequiredOnlyForParsedQueries) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | R(x)}");
  ASSERT_TRUE(q.ok());
  // Parsed nodes all carry spans.
  EXPECT_TRUE(VerifyCalculus(ctx, *q, /*require_spans=*/true).ok());
  // A node grafted on programmatically has none.
  Query wrapped{q->head, ctx.MakeNot(ctx.MakeNot(q->body))};
  VerifyReport report = VerifyCalculus(ctx, wrapped, /*require_spans=*/true);
  EXPECT_TRUE(report.Has("form.span")) << report.ToString();
  EXPECT_TRUE(VerifyCalculus(ctx, wrapped, /*require_spans=*/false).ok());
}

TEST(VerifyCalculusTest, DuplicateQuantifierVariableIsRejected) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | R(x) and exists y (T(x, y))}");
  ASSERT_TRUE(q.ok());
  Symbol y = ctx.symbols().Intern("y");
  std::vector<Symbol> vars = {y, y};
  Query bad{q->head, ctx.MakeExists(vars, q->body)};
  VerifyReport report = VerifyCalculus(ctx, bad, /*require_spans=*/false);
  EXPECT_TRUE(report.Has("form.quantifier-vars")) << report.ToString();
}

TEST(VerifySafetyFormulaTest, ShadowingIsRejectedAfterRectification) {
  AstContext ctx;
  auto q =
      ParseQuery(ctx, "{y | S(y) and exists x (R(x) and exists x (R(x)))}");
  ASSERT_TRUE(q.ok());
  VerifyReport report =
      VerifySafetyFormula(ctx, q->body, FreeVars(q->body));
  EXPECT_TRUE(report.Has("form.shadow")) << report.ToString();
  // The same formula is legal at stage 1 (rectification comes later).
  EXPECT_FALSE(VerifyCalculus(ctx, *q, true).Has("form.shadow"));
}

TEST(VerifySafetyFormulaTest, EscapedFreeVariablesAreRejected) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | R(x)}");
  ASSERT_TRUE(q.ok());
  VerifyReport report = VerifySafetyFormula(ctx, q->body, SymbolSet{});
  EXPECT_TRUE(report.Has("form.free-vars")) << report.ToString();
  EXPECT_TRUE(VerifySafetyFormula(ctx, q->body, FreeVars(q->body)).ok());
}

TEST(VerifyRanfTest, NonRanfFormulaFailsTheShapeRule) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | not R(x)}");
  ASSERT_TRUE(q.ok());
  AlgebraFactory factory(ctx);
  AlgebraOptions opts;
  VerifyReport report = VerifyRanfAlgebra(
      ctx, q->body, SymbolSet{}, SymbolSet{}, factory.Rel("R", 1), opts);
  EXPECT_TRUE(report.Has("ranf.shape")) << report.ToString();
}

TEST(VerifyAlgebraTest, RootArityMismatchIsRejected) {
  AstContext ctx;
  AlgebraFactory factory(ctx);
  AlgebraOptions opts;
  opts.expected_arity = 2;
  VerifyReport report = VerifyAlgebra(ctx, factory.Rel("R", 1), opts);
  EXPECT_TRUE(report.Has("alg.root-arity")) << report.ToString();
}

TEST(VerifyProfileTest, ProfileRulesCatchBadEstimatesAndArities) {
  ExecProfile p;
  p.op = PhysOpKind::kScan;
  p.arity = 1;
  EXPECT_TRUE(VerifyProfile(p).ok());
  p.stats.est_rows = -2;
  EXPECT_TRUE(VerifyProfile(p).Has("prof.est-rows"));
  p.stats.est_rows = -1;
  p.arity = -1;
  EXPECT_TRUE(VerifyProfile(p).Has("prof.arity"));
}

// --- report plumbing ---

TEST(VerifyReportTest, StatusRoundTripsIntoDiagnostics) {
  VerifyReport report;
  report.stage = Stage::kRanfAlgebra;
  report.violations.push_back(
      {"alg.col-range", "root.left", "column @5 beyond input arity 3"});
  report.violations.push_back({"alg.cond-null", "root", "null condition"});
  Status status = report.ToStatus();
  ASSERT_FALSE(status.ok());
  std::vector<diag::Diagnostic> diags = DiagnosticsFromStatus(status);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].code, "verify.alg.col-range");
  EXPECT_EQ(diags[1].code, "verify.alg.cond-null");
  // Statuses that carry no verification report decode to nothing.
  EXPECT_TRUE(DiagnosticsFromStatus(InternalError("boom")).empty());
  EXPECT_TRUE(DiagnosticsFromStatus(Status::Ok()).empty());
}

TEST(VerifyReportTest, CleanReportIsOkStatus) {
  VerifyReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.ToStatus().ok());
  EXPECT_TRUE(report.ToDiagnostics().empty());
}

// --- end-to-end gating ---

TEST(VerifyGateTest, CompilerAcceptsTheCorpusWithVerificationForced) {
  ScopedVerify on(1);
  Compiler compiler(TestFunctions());
  for (const char* text : kQueries) {
    auto q = compiler.Compile(text);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  }
}

TEST(VerifyGateTest, CompileFailsWithViolationReportWhenForced) {
  ScopedVerify on(1);
  Compiler compiler(TestFunctions());
  auto q = compiler.Compile("{x | R(x) and exists y (R(x, y))}");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("form.rel-arity"), std::string::npos)
      << q.status().ToString();
}

TEST(VerifyGateTest, ForceDisabledSkipsTheStageChecks) {
  ScopedVerify off(0);
  EXPECT_FALSE(Enabled());
  ForceEnabled(1);
  EXPECT_TRUE(Enabled());
  ForceEnabled(-1);  // back to the environment/build default
}

}  // namespace
}  // namespace emcalc::verify
