// Unit tests for src/base: Status/StatusOr, Arena, SymbolTable, SymbolSet,
// and Value.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/arena.h"
#include "src/base/status.h"
#include "src/base/symbol.h"
#include "src/base/symbol_set.h"
#include "src/base/value.h"

namespace emcalc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotSafeError("free variable x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotSafe);
  EXPECT_EQ(s.message(), "free variable x");
  EXPECT_EQ(s.ToString(), "NOT_SAFE: free variable x");
}

TEST(StatusTest, AllConstructorsSetDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(UnsupportedError("").code(), StatusCode::kUnsupported);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MovesValueOut) {
  StatusOr<std::string> v = std::string("payload");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

TEST(ArenaTest, AllocatesAligned) {
  Arena arena;
  for (int i = 0; i < 1000; ++i) {
    void* p8 = arena.Allocate(3, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
    void* p16 = arena.Allocate(5, 16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p16) % 16, 0u);
  }
  EXPECT_GE(arena.bytes_allocated(), 8000u);
}

TEST(ArenaTest, LargeAllocationsGetOwnBlocks) {
  Arena arena;
  char* big = static_cast<char*>(arena.Allocate(1 << 20, 8));
  big[0] = 'a';
  big[(1 << 20) - 1] = 'z';
  char* small = static_cast<char*>(arena.Allocate(16, 8));
  small[0] = 'b';
  EXPECT_EQ(big[0], 'a');
}

TEST(ArenaTest, NewArrayCopies) {
  Arena arena;
  int src[3] = {1, 2, 3};
  int* copy = arena.NewArray<int>(src, 3);
  src[0] = 99;
  EXPECT_EQ(copy[0], 1);
  EXPECT_EQ(copy[2], 3);
  EXPECT_EQ(arena.NewArray<int>(src, 0), nullptr);
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  Symbol a = table.Intern("x");
  Symbol b = table.Intern("x");
  Symbol c = table.Intern("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(table.Name(a), "x");
  EXPECT_EQ(table.Name(c), "y");
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, FreshAvoidsCollisions) {
  SymbolTable table;
  table.Intern("v_0");
  Symbol f = table.Fresh("v");
  EXPECT_NE(table.Name(f), "v_0");
  EXPECT_TRUE(table.Contains(std::string(table.Name(f))));
}

TEST(SymbolSetTest, NormalizesOnConstruction) {
  SymbolTable t;
  Symbol x = t.Intern("x"), y = t.Intern("y");
  SymbolSet s({y, x, y});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(x));
  EXPECT_TRUE(s.Contains(y));
}

TEST(SymbolSetTest, SetAlgebra) {
  SymbolTable t;
  Symbol x = t.Intern("x"), y = t.Intern("y"), z = t.Intern("z");
  SymbolSet xy({x, y}), yz({y, z});
  EXPECT_EQ(xy.Union(yz), SymbolSet({x, y, z}));
  EXPECT_EQ(xy.Intersect(yz), SymbolSet({y}));
  EXPECT_EQ(xy.Minus(yz), SymbolSet({x}));
  EXPECT_TRUE(SymbolSet({y}).IsSubsetOf(xy));
  EXPECT_FALSE(xy.IsSubsetOf(yz));
  EXPECT_TRUE(xy.Intersects(yz));
  EXPECT_FALSE(SymbolSet({x}).Intersects(SymbolSet({z})));
}

TEST(SymbolSetTest, InsertRemove) {
  SymbolTable t;
  Symbol x = t.Intern("x"), y = t.Intern("y");
  SymbolSet s;
  EXPECT_TRUE(s.empty());
  s.Insert(x);
  s.Insert(x);
  EXPECT_EQ(s.size(), 1u);
  s.Insert(y);
  s.Remove(x);
  EXPECT_EQ(s, SymbolSet({y}));
}

TEST(SymbolSetTest, ToStringUsesNames) {
  SymbolTable t;
  SymbolSet s({t.Intern("b"), t.Intern("a")});
  // Order follows interning ids, not lexicographic names.
  EXPECT_EQ(s.ToString(t), "{b,a}");
}

TEST(ValueTest, OrderIntsBeforeStrings) {
  EXPECT_LT(Value::Int(5), Value::Int(7));
  EXPECT_LT(Value::Int(1000), Value::Str("a"));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
}

TEST(ValueTest, EqualityAndAccessors) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Str("3"));
  EXPECT_EQ(Value::Int(3).AsInt(), 3);
  EXPECT_EQ(Value::Str("hi").AsStr(), "hi");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(-4).ToString(), "-4");
  EXPECT_EQ(Value::Str("bob").ToString(), "'bob'");
}

TEST(ValueTest, HashDistinguishesKinds) {
  EXPECT_NE(Value::Int(3).Hash(), Value::Str("3").Hash());
  EXPECT_EQ(Value::Int(3).Hash(), Value::Int(3).Hash());
}

}  // namespace
}  // namespace emcalc
