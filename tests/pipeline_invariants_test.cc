// Cross-cutting pipeline invariants, checked on both the named corpus and
// random queries:
//
//  - translated plans never contain kAdom nodes (the whole point of the
//    direct translation);
//  - plans reference only relations/functions the query mentions;
//  - the optimized plan is never larger than the raw plan;
//  - translation output is deterministic;
//  - compiled plans never call scalar functions on values outside
//    term^k(adom) — the operational heart of embedded domain independence
//    (Theorem 6.6), checked with a tripwire function registry.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/compiler.h"
#include "src/core/random_query.h"
#include "src/core/workload.h"
#include "src/exec/lower.h"
#include "src/obs/query_log.h"
#include "src/storage/adom.h"
#include "src/translate/pipeline.h"
#include "src/verify/verify.h"

namespace emcalc {
namespace {

// Collects operator kinds and relation symbols used by a plan.
void CollectPlan(const AlgExpr* plan, std::set<AlgKind>& kinds,
                 std::set<Symbol>& rels) {
  kinds.insert(plan->kind());
  if (plan->kind() == AlgKind::kRel) rels.insert(plan->rel());
  switch (plan->kind()) {
    case AlgKind::kProject:
    case AlgKind::kSelect:
      CollectPlan(plan->input(), kinds, rels);
      break;
    case AlgKind::kJoin:
    case AlgKind::kUnion:
    case AlgKind::kDiff:
      CollectPlan(plan->left(), kinds, rels);
      CollectPlan(plan->right(), kinds, rels);
      break;
    case AlgKind::kRel:
    case AlgKind::kUnit:
    case AlgKind::kEmpty:
    case AlgKind::kAdom:
      break;  // leaves
  }
}

TEST(PipelineInvariantsTest, PlansStayInsideTheQuerySignature) {
  AstContext ctx;
  RandomQueryGen gen(ctx, 2718);
  int checked = 0;
  for (int i = 0; i < 80 && checked < 25; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok()) << QueryToString(ctx, *q);
    std::set<AlgKind> kinds;
    std::set<Symbol> rels;
    CollectPlan(t->plan, kinds, rels);
    // Never an active-domain scan.
    EXPECT_EQ(kinds.count(AlgKind::kAdom), 0u) << QueryToString(ctx, *q);
    // Only relations the query mentions.
    auto mentioned = CollectRelations(q->body);
    for (Symbol r : rels) {
      EXPECT_TRUE(mentioned.count(r) > 0)
          << "plan scans unmentioned relation "
          << ctx.symbols().Name(r) << " for " << QueryToString(ctx, *q);
    }
    // The simplifier never grows the plan.
    EXPECT_LE(t->plan->NodeCount(), t->raw_plan->NodeCount());
    ++checked;
  }
  EXPECT_GE(checked, 20);
}

TEST(PipelineInvariantsTest, TranslationIsDeterministic) {
  AstContext ctx;
  RandomQueryGen gen(ctx, 977);
  int checked = 0;
  for (int i = 0; i < 40 && checked < 10; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    auto t1 = TranslateQuery(ctx, *q);
    auto t2 = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t1.ok() && t2.ok());
    EXPECT_EQ(AlgExprToString(ctx, t1->plan), AlgExprToString(ctx, t2->plan))
        << QueryToString(ctx, *q);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// The tripwire: functions that abort the test when applied to a value
// outside the allowed neighborhood. Verifies that evaluating a translated
// plan only ever applies scalar functions to values from term^k(adom) —
// the computational content of embedded domain independence.
TEST(PipelineInvariantsTest, PlansOnlyApplyFunctionsInsideTheNeighborhood) {
  AstContext ctx;
  RandomQueryGen gen(ctx, 31337);
  Database db;
  const auto& arities = gen.relation_arities();
  for (size_t i = 0; i < arities.size(); ++i) {
    AddRandomTuples(db, "R" + std::to_string(i), arities[i], 6, 6, 5 + i);
  }

  // The compact implementations used to close the neighborhood.
  auto rf0 = [](int64_t n) { return (n + 1) % 7; };
  auto rf1 = [](int64_t n, int64_t m) { return (n * 2 + m) % 7; };

  int checked = 0;
  for (int i = 0; i < 60 && checked < 12; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    int level = CountApplications(q->body);
    if (level > 4) continue;
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok());

    // Compute term^level(adom(q, I)) with plain implementations.
    FunctionRegistry plain;
    plain.Register("rf0", 1, [&rf0](std::span<const Value> a) {
      return Value::Int(rf0(a[0].is_int() ? a[0].AsInt() : 0));
    });
    plain.Register("rf1", 2, [&rf1](std::span<const Value> a) {
      return Value::Int(rf1(a[0].is_int() ? a[0].AsInt() : 0,
                            a[1].is_int() ? a[1].AsInt() : 0));
    });
    ValueSet base = ActiveDomain(ctx, q->body, db);
    auto closure = TermClosure(base, {{"rf0", 1}, {"rf1", 2}}, plain,
                               level, 100000);
    ASSERT_TRUE(closure.ok());
    const ValueSet& hood = *closure;
    auto inside = [&hood](const Value& v) {
      return std::binary_search(hood.begin(), hood.end(), v);
    };

    // Tripwire registry: same functions, but arguments must be in the
    // neighborhood.
    int violations = 0;
    FunctionRegistry tripwire;
    tripwire.Register("rf0", 1,
                      [&rf0, &inside, &violations](std::span<const Value> a) {
                        if (!inside(a[0])) ++violations;
                        return Value::Int(
                            rf0(a[0].is_int() ? a[0].AsInt() : 0));
                      });
    tripwire.Register("rf1", 2,
                      [&rf1, &inside, &violations](std::span<const Value> a) {
                        if (!inside(a[0]) || !inside(a[1])) ++violations;
                        return Value::Int(
                            rf1(a[0].is_int() ? a[0].AsInt() : 0,
                                a[1].is_int() ? a[1].AsInt() : 0));
                      });
    auto answer = EvaluateAlgebra(ctx, t->plan, db, tripwire);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(violations, 0) << QueryToString(ctx, *q);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(PipelineInvariantsTest, NamedCorpusPlanShapesAreStable) {
  // Golden plans for the paper's examples — any change here is a
  // deliberate translator change and should update this table.
  struct Golden {
    const char* query;
    const char* plan;
  };
  const Golden golden[] = {
      {"{y | exists x (R(x) and y = g(f(x)))}", "project([g(f(@1))], R)"},
      {"{x, y, z | R(x, y, z) and not S(y, z)}",
       "(R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S)))"},
      {"{x, y | (R(x) and f(x) = y) or (S(y) and g(y) = x)}",
       "(project([@1,f(@1)], R) + project([g(@1),@1], S))"},
      {"{x | R(x) and x < 4}", "select({@1<4}, R)"},
      {"{x | R(x) and not S(x)}", "(R - project([@1], join({@1==@2}, R, "
                                  "S)))"},
  };
  for (const Golden& g : golden) {
    AstContext ctx;
    auto q = ParseQuery(ctx, g.query);
    ASSERT_TRUE(q.ok());
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok()) << g.query;
    EXPECT_EQ(AlgExprToString(ctx, t->plan), g.plan) << g.query;
  }
}

// --- stage-boundary verification over the named corpus ---

// Every paper-corpus query must verify clean at all five stage boundaries
// (calculus, safety formula, RANF algebra, optimized algebra, physical).
// Stages 2-4 run inside TranslateQuery and stage 5 inside Lower when
// verification is forced on; stages 1, 4, and 5 are additionally checked
// via explicit reports so a clean Status provably means a clean report.
TEST(PipelineInvariantsTest, PaperCorpusVerifiesCleanAtEveryStage) {
  verify::ForceEnabled(1);
  const char* corpus[] = {
      "{y | exists x (R(x) and y = g(f(x)))}",
      "{x | R(x) and exists y (f(x) = y and not R(y))}",
      "{x, y | B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
      "((h(x) != y and k(x) != y) or P(x, y)))}",
      "{x, y | (R(x) and f(x) = y) or (S(y) and g(y) = x)}",
      "{x, y, z | R(x, y, z) and not S(y, z)}",
      "{x | R(x) and x < 4}",
  };
  FunctionRegistry registry = BuiltinFunctions();
  auto mod_fn = [](int64_t mul, int64_t add) {
    return [mul, add](std::span<const Value> a) {
      int64_t n = a[0].is_int() ? a[0].AsInt() : 17;
      return Value::Int((n * mul + add) % 7);
    };
  };
  registry.Register("f", 1, mod_fn(1, 1));
  registry.Register("g", 1, mod_fn(2, 0));
  registry.Register("h", 1, mod_fn(3, 2));
  registry.Register("k", 1, mod_fn(1, 4));
  for (const char* text : corpus) {
    AstContext ctx;
    auto q = ParseQuery(ctx, text);
    ASSERT_TRUE(q.ok()) << text;
    verify::VerifyReport calc =
        verify::VerifyCalculus(ctx, *q, /*require_spans=*/true);
    EXPECT_TRUE(calc.ok()) << text << "\n" << calc.ToString();
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok()) << text << ": " << t.status().ToString();
    verify::AlgebraOptions opts;
    opts.stage = verify::Stage::kOptimizedAlgebra;
    opts.expected_arity = static_cast<int>(q->head.size());
    verify::VerifyReport alg = verify::VerifyAlgebra(ctx, t->plan, opts);
    EXPECT_TRUE(alg.ok()) << text << "\n" << alg.ToString();
    auto lowered = Lower(ctx, t->plan, registry);
    ASSERT_TRUE(lowered.ok()) << text << ": " << lowered.status().ToString();
    verify::VerifyReport phys = verify::VerifyPhysical(*lowered, t->plan);
    EXPECT_TRUE(phys.ok()) << text << "\n" << phys.ToString();
  }
  verify::ForceEnabled(-1);
}

// Round trip: a stage-boundary violation during compile lands on the
// query-log compile record as a structured "verify.*" diagnostic (like
// lint findings), and survives the JSONL encode/decode.
TEST(PipelineInvariantsTest, VerifyViolationsAttachToCompileRecords) {
  verify::ForceEnabled(1);
  ::setenv("EMCALC_LINT", "1", 1);
  std::ostringstream sink;
  obs::QueryLog log(&sink);
  obs::QueryLog* saved = obs::GetQueryLog();
  obs::SetQueryLog(&log);

  Compiler compiler;
  // Parses fine, but uses R with two different arities — a stage-1
  // verification failure.
  auto q = compiler.Compile("{x | R(x) and exists y (R(x, y))}");
  EXPECT_FALSE(q.ok());

  obs::SetQueryLog(saved);
  ::unsetenv("EMCALC_LINT");
  verify::ForceEnabled(-1);

  std::istringstream in(sink.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto record = obs::ParseQueryLogRecord(line);
  ASSERT_TRUE(record.ok()) << line;
  EXPECT_EQ(record->event, "compile");
  EXPECT_FALSE(record->ok);
  bool found = false;
  for (const diag::Diagnostic& d : record->diagnostics) {
    if (d.code == "verify.form.rel-arity") found = true;
  }
  EXPECT_TRUE(found) << "no verify.form.rel-arity diagnostic in: " << line;
}

}  // namespace
}  // namespace emcalc
