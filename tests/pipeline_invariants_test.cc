// Cross-cutting pipeline invariants, checked on both the named corpus and
// random queries:
//
//  - translated plans never contain kAdom nodes (the whole point of the
//    direct translation);
//  - plans reference only relations/functions the query mentions;
//  - the optimized plan is never larger than the raw plan;
//  - translation output is deterministic;
//  - compiled plans never call scalar functions on values outside
//    term^k(adom) — the operational heart of embedded domain independence
//    (Theorem 6.6), checked with a tripwire function registry.
#include <gtest/gtest.h>

#include <set>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/random_query.h"
#include "src/core/workload.h"
#include "src/storage/adom.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

// Collects operator kinds and relation symbols used by a plan.
void CollectPlan(const AlgExpr* plan, std::set<AlgKind>& kinds,
                 std::set<Symbol>& rels) {
  kinds.insert(plan->kind());
  if (plan->kind() == AlgKind::kRel) rels.insert(plan->rel());
  switch (plan->kind()) {
    case AlgKind::kProject:
    case AlgKind::kSelect:
      CollectPlan(plan->input(), kinds, rels);
      break;
    case AlgKind::kJoin:
    case AlgKind::kUnion:
    case AlgKind::kDiff:
      CollectPlan(plan->left(), kinds, rels);
      CollectPlan(plan->right(), kinds, rels);
      break;
    default:
      break;
  }
}

TEST(PipelineInvariantsTest, PlansStayInsideTheQuerySignature) {
  AstContext ctx;
  RandomQueryGen gen(ctx, 2718);
  int checked = 0;
  for (int i = 0; i < 80 && checked < 25; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok()) << QueryToString(ctx, *q);
    std::set<AlgKind> kinds;
    std::set<Symbol> rels;
    CollectPlan(t->plan, kinds, rels);
    // Never an active-domain scan.
    EXPECT_EQ(kinds.count(AlgKind::kAdom), 0u) << QueryToString(ctx, *q);
    // Only relations the query mentions.
    auto mentioned = CollectRelations(q->body);
    for (Symbol r : rels) {
      EXPECT_TRUE(mentioned.count(r) > 0)
          << "plan scans unmentioned relation "
          << ctx.symbols().Name(r) << " for " << QueryToString(ctx, *q);
    }
    // The simplifier never grows the plan.
    EXPECT_LE(t->plan->NodeCount(), t->raw_plan->NodeCount());
    ++checked;
  }
  EXPECT_GE(checked, 20);
}

TEST(PipelineInvariantsTest, TranslationIsDeterministic) {
  AstContext ctx;
  RandomQueryGen gen(ctx, 977);
  int checked = 0;
  for (int i = 0; i < 40 && checked < 10; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    auto t1 = TranslateQuery(ctx, *q);
    auto t2 = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t1.ok() && t2.ok());
    EXPECT_EQ(AlgExprToString(ctx, t1->plan), AlgExprToString(ctx, t2->plan))
        << QueryToString(ctx, *q);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// The tripwire: functions that abort the test when applied to a value
// outside the allowed neighborhood. Verifies that evaluating a translated
// plan only ever applies scalar functions to values from term^k(adom) —
// the computational content of embedded domain independence.
TEST(PipelineInvariantsTest, PlansOnlyApplyFunctionsInsideTheNeighborhood) {
  AstContext ctx;
  RandomQueryGen gen(ctx, 31337);
  Database db;
  const auto& arities = gen.relation_arities();
  for (size_t i = 0; i < arities.size(); ++i) {
    AddRandomTuples(db, "R" + std::to_string(i), arities[i], 6, 6, 5 + i);
  }

  // The compact implementations used to close the neighborhood.
  auto rf0 = [](int64_t n) { return (n + 1) % 7; };
  auto rf1 = [](int64_t n, int64_t m) { return (n * 2 + m) % 7; };

  int checked = 0;
  for (int i = 0; i < 60 && checked < 12; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    int level = CountApplications(q->body);
    if (level > 4) continue;
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok());

    // Compute term^level(adom(q, I)) with plain implementations.
    FunctionRegistry plain;
    plain.Register("rf0", 1, [&rf0](std::span<const Value> a) {
      return Value::Int(rf0(a[0].is_int() ? a[0].AsInt() : 0));
    });
    plain.Register("rf1", 2, [&rf1](std::span<const Value> a) {
      return Value::Int(rf1(a[0].is_int() ? a[0].AsInt() : 0,
                            a[1].is_int() ? a[1].AsInt() : 0));
    });
    ValueSet base = ActiveDomain(ctx, q->body, db);
    auto closure = TermClosure(base, {{"rf0", 1}, {"rf1", 2}}, plain,
                               level, 100000);
    ASSERT_TRUE(closure.ok());
    const ValueSet& hood = *closure;
    auto inside = [&hood](const Value& v) {
      return std::binary_search(hood.begin(), hood.end(), v);
    };

    // Tripwire registry: same functions, but arguments must be in the
    // neighborhood.
    int violations = 0;
    FunctionRegistry tripwire;
    tripwire.Register("rf0", 1,
                      [&rf0, &inside, &violations](std::span<const Value> a) {
                        if (!inside(a[0])) ++violations;
                        return Value::Int(
                            rf0(a[0].is_int() ? a[0].AsInt() : 0));
                      });
    tripwire.Register("rf1", 2,
                      [&rf1, &inside, &violations](std::span<const Value> a) {
                        if (!inside(a[0]) || !inside(a[1])) ++violations;
                        return Value::Int(
                            rf1(a[0].is_int() ? a[0].AsInt() : 0,
                                a[1].is_int() ? a[1].AsInt() : 0));
                      });
    auto answer = EvaluateAlgebra(ctx, t->plan, db, tripwire);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(violations, 0) << QueryToString(ctx, *q);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(PipelineInvariantsTest, NamedCorpusPlanShapesAreStable) {
  // Golden plans for the paper's examples — any change here is a
  // deliberate translator change and should update this table.
  struct Golden {
    const char* query;
    const char* plan;
  };
  const Golden golden[] = {
      {"{y | exists x (R(x) and y = g(f(x)))}", "project([g(f(@1))], R)"},
      {"{x, y, z | R(x, y, z) and not S(y, z)}",
       "(R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S)))"},
      {"{x, y | (R(x) and f(x) = y) or (S(y) and g(y) = x)}",
       "(project([@1,f(@1)], R) + project([g(@1),@1], S))"},
      {"{x | R(x) and x < 4}", "select({@1<4}, R)"},
      {"{x | R(x) and not S(x)}", "(R - project([@1], join({@1==@2}, R, "
                                  "S)))"},
  };
  for (const Golden& g : golden) {
    AstContext ctx;
    auto q = ParseQuery(ctx, g.query);
    ASSERT_TRUE(q.ok());
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok()) << g.query;
    EXPECT_EQ(AlgExprToString(ctx, t->plan), g.plan) << g.query;
  }
}

}  // namespace
}  // namespace emcalc
