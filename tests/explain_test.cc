// Tests for the ExplainQuery reporting API.
#include <gtest/gtest.h>

#include "src/core/explain.h"
#include "src/storage/interpretation.h"

namespace emcalc {
namespace {

TEST(ExplainTest, SafeQueryFullReport) {
  AstContext ctx;
  auto e = ExplainQuery(ctx, "{x, y, z | R(x, y, z) and not S(y, z)}");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_TRUE(e->em_allowed);
  EXPECT_TRUE(e->gt91_allowed);
  EXPECT_TRUE(e->range_restricted);
  EXPECT_TRUE(e->top91_safe);
  EXPECT_EQ(e->application_count, 0);
  EXPECT_EQ(e->plan_text,
            "(R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S)))");
  EXPECT_GT(e->plan_nodes, 0);
  EXPECT_GE(e->raw_plan_nodes, e->plan_nodes);
  std::string report = e->ToString();
  EXPECT_NE(report.find("em-allowed:        yes"), std::string::npos);
  EXPECT_NE(report.find("plan tree:"), std::string::npos);
}

TEST(ExplainTest, ExplainAnalyzeIncludesExecutionProfile) {
  AstContext ctx;
  Database db;
  ASSERT_TRUE(db.Insert("R", {Value::Int(1), Value::Int(2),
                              Value::Int(3)}).ok());
  ASSERT_TRUE(db.Insert("S", {Value::Int(2), Value::Int(3)}).ok());
  FunctionRegistry registry = BuiltinFunctions();
  auto e = ExplainAnalyzeQuery(ctx, "{x, y, z | R(x, y, z) and not S(y, z)}",
                               db, registry);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e->answer_rows, 0u);  // the single R row matches S
  std::string report = e->ToString();
  EXPECT_NE(report.find("execution profile:"), std::string::npos) << report;
  EXPECT_NE(report.find("rows_in="), std::string::npos) << report;
  EXPECT_NE(report.find("rows_out="), std::string::npos) << report;
  EXPECT_NE(report.find("time="), std::string::npos) << report;
  // Rejected queries still explain, without a profile.
  auto rejected = ExplainAnalyzeQuery(ctx, "{x | not R3(x)}", db, registry);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected->em_allowed);
  EXPECT_TRUE(rejected->exec_profile_text.empty());
}

TEST(ExplainTest, UnsafeQueryCarriesReason) {
  AstContext ctx;
  auto e = ExplainQuery(ctx, "{x | not R(x)}");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->em_allowed);
  EXPECT_NE(e->rejection_reason.find("not em-allowed"), std::string::npos);
  EXPECT_TRUE(e->plan_text.empty());
  std::string report = e->ToString();
  EXPECT_NE(report.find("em-allowed:        no"), std::string::npos);
}

TEST(ExplainTest, FunctionMeasuresReported) {
  AstContext ctx;
  auto e = ExplainQuery(ctx, "{y | exists x (R(x) and y = g(f(x)))}");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->application_count, 2);
  EXPECT_EQ(e->max_function_depth, 2);
  EXPECT_FALSE(e->gt91_allowed);  // function-free criterion
  EXPECT_EQ(e->plan_text, "project([g(f(@1))], R)");
}

TEST(ExplainTest, ErrorsSurfaceForBadInput) {
  AstContext ctx;
  EXPECT_FALSE(ExplainQuery(ctx, "{x | R(x").ok());
  EXPECT_FALSE(ExplainQuery(ctx, "{x | R(x) and R(x, x)}").ok());
}

TEST(ExplainTest, HonorsTranslateOptions) {
  AstContext ctx;
  TranslateOptions no_t10;
  no_t10.enable_t10 = false;
  const char* q4 =
      "{x, y | B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
      "((h(x) != y and k(x) != y) or P(x, y)))}";
  auto with = ExplainQuery(ctx, q4);
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(with->em_allowed);
  auto without = ExplainQuery(ctx, q4, no_t10);
  ASSERT_TRUE(without.ok());
  // em-allowed holds, but the GT91-only pipeline cannot produce a plan —
  // reported as a rejection with the RANF failure as the reason.
  EXPECT_FALSE(without->em_allowed);
  EXPECT_NE(without->rejection_reason.find("stuck"), std::string::npos);
}

}  // namespace
}  // namespace emcalc
