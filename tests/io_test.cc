// Tests for CSV import/export and the algebra-plan parser round-trip.
#include <gtest/gtest.h>

#include "src/algebra/eval.h"
#include "src/algebra/parser.h"
#include "src/algebra/printer.h"
#include "src/calculus/parser.h"
#include "src/storage/csv.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

TEST(CsvTest, LoadBasics) {
  Database db;
  ASSERT_TRUE(LoadCsvText(db, "R",
                          "1,alice,30\n"
                          "2,bob,-4\n"
                          "# comment line\n"
                          "\n"
                          "3,'42',0\n")
                  .ok());
  const Relation* r = db.Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->arity(), 3);
  EXPECT_EQ(r->size(), 3u);
  EXPECT_TRUE(r->Contains({Value::Int(1), Value::Str("alice"),
                           Value::Int(30)}));
  EXPECT_TRUE(r->Contains({Value::Int(2), Value::Str("bob"),
                           Value::Int(-4)}));
  // Quoted '42' stays a string.
  EXPECT_TRUE(r->Contains({Value::Int(3), Value::Str("42"), Value::Int(0)}));
}

TEST(CsvTest, WhitespaceTrimmed) {
  Database db;
  ASSERT_TRUE(LoadCsvText(db, "R", "  7 ,  spaced out  \n").ok());
  EXPECT_TRUE(db.Find("R")->Contains(
      {Value::Int(7), Value::Str("spaced out")}));
}

TEST(CsvTest, ArityMismatchRejected) {
  Database db;
  Status s = LoadCsvText(db, "R", "1,2\n1,2,3\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(CsvTest, ConflictingCatalogAritySurfacesError) {
  // Importing into a pre-declared relation of another arity must produce a
  // status, not a crash (the insert path goes through Relation::TryInsert).
  Database db;
  ASSERT_TRUE(db.AddRelation("R", 3).ok());
  Status s = LoadCsvText(db, "R", "1,2\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, MissingFileRejected) {
  Database db;
  EXPECT_FALSE(LoadCsvFile(db, "R", "/nonexistent/file.csv").ok());
}

TEST(CsvTest, RoundTrip) {
  Database db;
  ASSERT_TRUE(db.Insert("R", {Value::Int(2), Value::Str("x")}).ok());
  ASSERT_TRUE(db.Insert("R", {Value::Int(1), Value::Str("y")}).ok());
  std::string text = WriteCsvText(*db.Find("R"));
  Database db2;
  ASSERT_TRUE(LoadCsvText(db2, "R", text).ok());
  EXPECT_EQ(*db.Find("R"), *db2.Find("R"));
}

class PlanParseTest : public ::testing::Test {
 protected:
  PlanParseTest() : registry_(BuiltinFunctions()) {
    (void)db_.Insert("R", {Value::Int(1), Value::Int(2), Value::Int(3)});
    (void)db_.Insert("R", {Value::Int(4), Value::Int(5), Value::Int(6)});
    (void)db_.Insert("S", {Value::Int(2), Value::Int(3)});
    arities_ = {{"R", 3}, {"S", 2}};
  }
  AstContext ctx_;
  Database db_;
  FunctionRegistry registry_;
  std::map<std::string, int> arities_;
};

TEST_F(PlanParseTest, ParsesPaperPlan) {
  const char* text =
      "(R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S)))";
  auto plan = ParseAlgebra(ctx_, text, arities_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(AlgExprToString(ctx_, *plan), text);
  auto answer = EvaluateAlgebra(ctx_, *plan, db_, registry_);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 1u);  // (1,2,3) is filtered out by S(2,3)
}

TEST_F(PlanParseTest, ParsesFunctionsAndLiterals) {
  auto plan = ParseAlgebra(
      ctx_, "select({succ(@1)<=5, @2!='x'}, project([@1,@2], R))", arities_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto answer = EvaluateAlgebra(ctx_, *plan, db_, registry_);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 2u);
}

TEST_F(PlanParseTest, UnitAndEmpty) {
  auto unit = ParseAlgebra(ctx_, "unit", arities_);
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ((*unit)->kind(), AlgKind::kUnit);
  auto empty = ParseAlgebra(ctx_, "empty_3", arities_);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ((*empty)->arity(), 3);
  auto u = ParseAlgebra(ctx_, "(R + empty_3)", arities_);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->kind(), AlgKind::kUnion);
}

TEST_F(PlanParseTest, Rejections) {
  EXPECT_FALSE(ParseAlgebra(ctx_, "NOPE", arities_).ok());
  EXPECT_FALSE(ParseAlgebra(ctx_, "project([@9], S)", arities_).ok());
  EXPECT_FALSE(ParseAlgebra(ctx_, "join({@1=@2}, R, S)", arities_).ok());
  EXPECT_FALSE(ParseAlgebra(ctx_, "(R + S)", arities_).ok());  // arity 3 vs 2
  EXPECT_FALSE(ParseAlgebra(ctx_, "R extra", arities_).ok());
  EXPECT_FALSE(ParseAlgebra(ctx_, "adom", arities_).ok());
  EXPECT_FALSE(ParseAlgebra(ctx_, "select({@1==@2}, )", arities_).ok());
}

// Round-trip property over real translator output.
TEST_F(PlanParseTest, TranslatedPlansRoundTrip) {
  const char* corpus[] = {
      "{x, y, z | R(x, y, z) and not S(y, z)}",
      "{x | exists y, z (R(x, y, z) and succ(x) = y)}",
      "{x, y | S(x, y) and x < y}",
      "{x, y | S(x, y) or S(y, x)}",
  };
  for (const char* text : corpus) {
    auto q = ParseQuery(ctx_, text);
    ASSERT_TRUE(q.ok());
    auto t = TranslateQuery(ctx_, *q);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    std::string printed = AlgExprToString(ctx_, t->plan);
    auto reparsed = ParseAlgebra(ctx_, printed, arities_);
    ASSERT_TRUE(reparsed.ok()) << printed << "\n"
                               << reparsed.status().ToString();
    EXPECT_TRUE(AlgExprsEqual(t->plan, *reparsed)) << printed;
    auto a = EvaluateAlgebra(ctx_, t->plan, db_, registry_);
    auto b = EvaluateAlgebra(ctx_, *reparsed, db_, registry_);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << printed;
  }
}

}  // namespace
}  // namespace emcalc
