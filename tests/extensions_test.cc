// Tests for the Section-9 extensions: external comparison predicates
// (<, <=, >, >=) and parameterized "em-allowed for X" queries.
#include <gtest/gtest.h>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/compiler.h"
#include "src/eval/calculus_eval.h"
#include "src/safety/em_allowed.h"
#include "src/safety/pushnot.h"
#include "src/safety/simplify.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

class ComparisonTest : public ::testing::Test {
 protected:
  ComparisonTest() : registry_(BuiltinFunctions()) {
    for (int i = 1; i <= 6; ++i) {
      EXPECT_TRUE(db_.Insert("R", {Value::Int(i)}).ok());
    }
    EXPECT_TRUE(db_.Insert("T", {Value::Int(2), Value::Int(5)}).ok());
    EXPECT_TRUE(db_.Insert("T", {Value::Int(4), Value::Int(1)}).ok());
  }

  const Formula* Parse(std::string_view text) {
    auto f = ParseFormula(ctx_, text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    return *f;
  }

  AstContext ctx_;
  Database db_;
  FunctionRegistry registry_;
};

TEST_F(ComparisonTest, ParseAndPrint) {
  EXPECT_EQ(FormulaToString(ctx_, Parse("x < y")), "x < y");
  EXPECT_EQ(FormulaToString(ctx_, Parse("x <= succ(y)")), "x <= succ(y)");
  // > and >= normalize to swapped < / <=.
  EXPECT_EQ(FormulaToString(ctx_, Parse("x > y")), "y < x");
  EXPECT_EQ(FormulaToString(ctx_, Parse("x >= y")), "y <= x");
}

TEST_F(ComparisonTest, RoundTrip) {
  const char* corpus[] = {"R(x) and x < 3", "R(x) and 2 <= x and x <= 4"};
  for (const char* text : corpus) {
    const Formula* f = Parse(text);
    std::string printed = FormulaToString(ctx_, f);
    const Formula* again = Parse(printed);
    EXPECT_TRUE(FormulasEqual(f, again)) << printed;
  }
}

TEST_F(ComparisonTest, PushNotFlipsComparisons) {
  EXPECT_EQ(FormulaToString(ctx_, PushNotStep(ctx_, Parse("not x < y"))),
            "y <= x");
  EXPECT_EQ(FormulaToString(ctx_, PushNotStep(ctx_, Parse("not x <= y"))),
            "y < x");
}

TEST_F(ComparisonTest, SimplifyIdenticalSides) {
  EXPECT_EQ(Simplify(ctx_, Parse("x < x")), ctx_.False());
  EXPECT_EQ(Simplify(ctx_, Parse("x <= x")), ctx_.True());
}

TEST_F(ComparisonTest, ComparisonsGiveNoBounding) {
  // Externally defined predicates bound nothing (Section 9(d)).
  EXPECT_FALSE(CheckEmAllowed(ctx_, Parse("x < 5")).em_allowed);
  EXPECT_FALSE(CheckEmAllowed(ctx_, Parse("R(x) and x < y")).em_allowed);
  EXPECT_TRUE(CheckEmAllowed(ctx_, Parse("R(x) and x < 5")).em_allowed);
  // Negated comparisons give no bounding either.
  EXPECT_FALSE(
      CheckEmAllowed(ctx_, Parse("R(x) and not (x < y)")).em_allowed);
}

TEST_F(ComparisonTest, TranslatesToSelection) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | R(x) and x < 4}");
  ASSERT_TRUE(q.ok());
  auto t = TranslateQuery(ctx, *q);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(AlgExprToString(ctx, t->plan), "select({@1<4}, R)");
}

TEST_F(ComparisonTest, MatchesOracle) {
  const char* corpus[] = {
      "{x | R(x) and x < 4}",
      "{x | R(x) and 2 <= x and x <= 4}",
      "{x | R(x) and not (x < 3)}",
      "{x, y | T(x, y) and x < y}",
      "{x, y | T(x, y) and succ(x) <= y}",
      "{x | R(x) and not exists y (T(x, y) and y < x)}",
      "{x | R(x) and (x < 2 or 5 <= x)}",
  };
  for (const char* text : corpus) {
    auto q = ParseQuery(ctx_, text);
    ASSERT_TRUE(q.ok());
    auto t = TranslateQuery(ctx_, *q);
    ASSERT_TRUE(t.ok()) << text << ": " << t.status().ToString();
    auto plan_answer = EvaluateAlgebra(ctx_, t->plan, db_, registry_);
    ASSERT_TRUE(plan_answer.ok());
    auto oracle = EvaluateCalculus(ctx_, *q, db_, registry_);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(*plan_answer, *oracle)
        << text << "\nplan: " << AlgExprToString(ctx_, t->plan);
  }
}

TEST_F(ComparisonTest, MixedTypeOrderIsTotal) {
  Database db;
  ASSERT_TRUE(db.Insert("M", {Value::Int(5)}).ok());
  ASSERT_TRUE(db.Insert("M", {Value::Str("apple")}).ok());
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | M(x) and x < 'zebra'}");
  ASSERT_TRUE(q.ok());
  auto t = TranslateQuery(ctx, *q);
  ASSERT_TRUE(t.ok());
  auto answer = EvaluateAlgebra(ctx, t->plan, db, registry_);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 2u);  // ints precede all strings
}

// --- parameterized queries ---

class ParameterizedTest : public ::testing::Test {
 protected:
  ParameterizedTest() {
    // EMP(id, dept, salary)
    EXPECT_TRUE(db_.Insert("EMP", {Value::Int(1), Value::Int(10),
                                   Value::Int(50'000)})
                    .ok());
    EXPECT_TRUE(db_.Insert("EMP", {Value::Int(2), Value::Int(10),
                                   Value::Int(80'000)})
                    .ok());
    EXPECT_TRUE(db_.Insert("EMP", {Value::Int(3), Value::Int(20),
                                   Value::Int(60'000)})
                    .ok());
  }
  Compiler compiler_;
  Database db_;
};

TEST_F(ParameterizedTest, RunWithDifferentArguments) {
  auto q = compiler_.CompileParameterized(
      "{e | exists s (EMP(e, d, s) and cap <= s)}", {"d", "cap"});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->parameters().size(), 2u);

  auto dept10_60k = q->Run(db_, {Value::Int(10), Value::Int(60'000)});
  ASSERT_TRUE(dept10_60k.ok()) << dept10_60k.status().ToString();
  ASSERT_EQ(dept10_60k->size(), 1u);
  EXPECT_TRUE(dept10_60k->Contains({Value::Int(2)}));

  auto dept10_40k = q->Run(db_, {Value::Int(10), Value::Int(40'000)});
  ASSERT_TRUE(dept10_40k.ok());
  EXPECT_EQ(dept10_40k->size(), 2u);

  auto dept20 = q->Run(db_, {Value::Int(20), Value::Int(0)});
  ASSERT_TRUE(dept20.ok());
  EXPECT_TRUE(dept20->Contains({Value::Int(3)}));
}

TEST_F(ParameterizedTest, ParameterBoundFunctionImage) {
  // The q2 shape relative to a parameter: y = f(p) is em-allowed *for* p
  // but not as a closed query.
  auto bad = compiler_.Compile("{y | succ(p) = y}");
  EXPECT_FALSE(bad.ok());
  auto good = compiler_.CompileParameterized("{y | succ(p) = y}", {"p"});
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  auto answer = good->Run(db_, {Value::Int(41)});
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_TRUE(answer->Contains({Value::Int(42)}));
}

TEST_F(ParameterizedTest, BareFormulaFormDropsParamsFromHead) {
  auto q = compiler_.CompileParameterized("EMP(e, d, s) and cap <= s",
                                          {"cap"});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Head = {d, e, s} (sorted), cap excluded.
  EXPECT_EQ(q->query().head.size(), 3u);
}

TEST_F(ParameterizedTest, ValidationErrors) {
  // Arg count mismatch.
  auto q = compiler_.CompileParameterized("{y | succ(p) = y}", {"p"});
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->Run(db_, {}).ok());
  EXPECT_FALSE(q->Run(db_, {Value::Int(1), Value::Int(2)}).ok());
  // Unsafe even given parameters.
  EXPECT_FALSE(
      compiler_.CompileParameterized("{y | not EMP(p, y, y)}", {"p"}).ok());
  // Duplicate parameter names.
  EXPECT_FALSE(
      compiler_.CompileParameterized("{y | succ(p) = y}", {"p", "p"}).ok());
  // Declared parameter not free in the body is a mismatch.
  EXPECT_FALSE(
      compiler_.CompileParameterized("{y | succ(1) = y}", {"p"}).ok());
}

TEST_F(ParameterizedTest, PlanForShowsGroundedPlan) {
  auto q = compiler_.CompileParameterized("{y | succ(p) = y}", {"p"});
  ASSERT_TRUE(q.ok());
  auto plan = q->PlanFor({Value::Int(7)});
  ASSERT_TRUE(plan.ok());
  std::string text = AlgExprToString(compiler_.ctx(), *plan);
  EXPECT_NE(text.find("succ(7)"), std::string::npos) << text;
}

TEST_F(ParameterizedTest, AgreesWithConstantSubstitutedQuery) {
  auto param = compiler_.CompileParameterized(
      "{e | exists s (EMP(e, d, s) and s < cap)}", {"d", "cap"});
  ASSERT_TRUE(param.ok());
  auto direct = compiler_.Compile(
      "{e | exists s (EMP(e, 10, s) and s < 70000)}");
  ASSERT_TRUE(direct.ok());
  auto a = param->Run(db_, {Value::Int(10), Value::Int(70'000)});
  auto b = direct->Run(db_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace emcalc
