// Unit and property tests for the FinD engine: closures (naive and
// Beeri–Bernstein linear), entailment, Armstrong's axioms, reduced covers,
// projection, meets, and the bd() function over formulas.
#include <gtest/gtest.h>

#include <random>

#include "src/calculus/parser.h"
#include "src/finds/bound.h"
#include "src/finds/find.h"
#include "src/finds/find_set.h"

namespace emcalc {
namespace {

class FinDTest : public ::testing::Test {
 protected:
  Symbol S(std::string_view name) { return table_.Intern(name); }
  SymbolTable table_;
};

TEST_F(FinDTest, RefinementOrder) {
  // From the paper: x -> zw refines xy -> z.
  FinD strong{SymbolSet({S("x")}), SymbolSet({S("z"), S("w")})};
  FinD weak{SymbolSet({S("x"), S("y")}), SymbolSet({S("z")})};
  EXPECT_TRUE(Refines(strong, weak));
  EXPECT_FALSE(Refines(weak, strong));
  // Reflexive.
  EXPECT_TRUE(Refines(weak, weak));
}

TEST_F(FinDTest, RefinementAntisymmetric) {
  FinD a{SymbolSet({S("x")}), SymbolSet({S("y")})};
  FinD b{SymbolSet({S("x")}), SymbolSet({S("y"), S("z")})};
  EXPECT_TRUE(Refines(b, a));
  EXPECT_FALSE(Refines(a, b));
}

TEST_F(FinDTest, TrivialFinDsAreDropped) {
  FinDSet set;
  set.Add(FinD{SymbolSet({S("x"), S("y")}), SymbolSet({S("x")})});
  EXPECT_TRUE(set.empty());
  set.Add(FinD{SymbolSet({S("x")}), SymbolSet({S("y")})});
  set.Add(FinD{SymbolSet({S("x")}), SymbolSet({S("y")})});  // dup
  EXPECT_EQ(set.size(), 1u);
}

TEST_F(FinDTest, ClosureBasics) {
  FinDSet set;
  set.Add(FinD{SymbolSet{}, SymbolSet({S("a")})});
  set.Add(FinD{SymbolSet({S("a")}), SymbolSet({S("b")})});
  set.Add(FinD{SymbolSet({S("b"), S("c")}), SymbolSet({S("d")})});
  SymbolSet closure = set.Closure(SymbolSet{});
  EXPECT_EQ(closure, SymbolSet({S("a"), S("b")}));
  EXPECT_EQ(set.Closure(SymbolSet({S("c")})),
            SymbolSet({S("a"), S("b"), S("c"), S("d")}));
}

TEST_F(FinDTest, LinearClosureMatchesNaive) {
  std::mt19937_64 rng(7);
  std::vector<Symbol> pool;
  for (int i = 0; i < 12; ++i) pool.push_back(S("v" + std::to_string(i)));
  for (int trial = 0; trial < 200; ++trial) {
    FinDSet set;
    int n = 1 + static_cast<int>(rng() % 10);
    for (int i = 0; i < n; ++i) {
      SymbolSet lhs, rhs;
      int nl = static_cast<int>(rng() % 3);
      int nr = 1 + static_cast<int>(rng() % 3);
      for (int j = 0; j < nl; ++j) lhs.Insert(pool[rng() % pool.size()]);
      for (int j = 0; j < nr; ++j) rhs.Insert(pool[rng() % pool.size()]);
      set.Add(FinD{lhs, rhs});
    }
    SymbolSet start;
    int ns = static_cast<int>(rng() % 4);
    for (int j = 0; j < ns; ++j) start.Insert(pool[rng() % pool.size()]);
    EXPECT_EQ(set.Closure(start), set.LinearClosure(start));
  }
}

TEST_F(FinDTest, EntailmentArmstrongAxioms) {
  std::mt19937_64 rng(11);
  std::vector<Symbol> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(S("w" + std::to_string(i)));
  auto random_set = [&](int max_finds) {
    FinDSet set;
    int n = static_cast<int>(rng() % max_finds);
    for (int i = 0; i < n; ++i) {
      SymbolSet lhs, rhs;
      for (int j = 0, nl = static_cast<int>(rng() % 3); j < nl; ++j) {
        lhs.Insert(pool[rng() % pool.size()]);
      }
      for (int j = 0, nr = 1 + static_cast<int>(rng() % 2); j < nr; ++j) {
        rhs.Insert(pool[rng() % pool.size()]);
      }
      set.Add(FinD{lhs, rhs});
    }
    return set;
  };
  auto random_vars = [&](int max) {
    SymbolSet s;
    for (int j = 0, n = static_cast<int>(rng() % max); j < n; ++j) {
      s.Insert(pool[rng() % pool.size()]);
    }
    return s;
  };
  for (int trial = 0; trial < 100; ++trial) {
    FinDSet f = random_set(6);
    SymbolSet x = random_vars(4), y = random_vars(4), z = random_vars(3);
    // Reflexivity: X |= X -> Y for Y subset of X.
    EXPECT_TRUE(f.Entails(x.Union(y), y));
    // Augmentation: if X -> Y then XZ -> YZ.
    if (f.Entails(x, y)) {
      EXPECT_TRUE(f.Entails(x.Union(z), y.Union(z)));
    }
    // Transitivity via closure: X -> closure(X) always.
    EXPECT_TRUE(f.Entails(x, f.Closure(x)));
  }
}

TEST_F(FinDTest, ReduceLeftMinimizes) {
  FinDSet set;
  // {} -> a together with a,b -> c reduces b,{} side: a alone suffices? No:
  // closure({b}) = {a,b,c}: since {}->a makes a free, {b} -> c holds.
  set.Add(FinD{SymbolSet{}, SymbolSet({S("a")})});
  set.Add(FinD{SymbolSet({S("a"), S("b")}), SymbolSet({S("c")})});
  FinDSet reduced = set.Reduce();
  EXPECT_TRUE(reduced.EquivalentTo(set));
  for (const FinD& f : reduced) {
    EXPECT_FALSE(f.lhs.Contains(S("a")));  // 'a' is implied, never needed
  }
}

TEST_F(FinDTest, ReduceRemovesRedundant) {
  FinDSet set;
  set.Add(FinD{SymbolSet({S("x")}), SymbolSet({S("y")})});
  set.Add(FinD{SymbolSet({S("y")}), SymbolSet({S("z")})});
  set.Add(FinD{SymbolSet({S("x")}), SymbolSet({S("z")})});  // implied
  FinDSet reduced = set.Reduce();
  EXPECT_TRUE(reduced.EquivalentTo(set));
  EXPECT_EQ(reduced.size(), 2u);
}

TEST_F(FinDTest, ReducePropertyEquivalentAndIdempotent) {
  std::mt19937_64 rng(23);
  std::vector<Symbol> pool;
  for (int i = 0; i < 7; ++i) pool.push_back(S("r" + std::to_string(i)));
  for (int trial = 0; trial < 150; ++trial) {
    FinDSet set;
    int n = static_cast<int>(rng() % 8);
    for (int i = 0; i < n; ++i) {
      SymbolSet lhs, rhs;
      for (int j = 0, nl = static_cast<int>(rng() % 3); j < nl; ++j) {
        lhs.Insert(pool[rng() % pool.size()]);
      }
      rhs.Insert(pool[rng() % pool.size()]);
      set.Add(FinD{lhs, rhs});
    }
    FinDSet reduced = set.Reduce();
    EXPECT_TRUE(reduced.EquivalentTo(set));
    // Idempotent and canonical.
    FinDSet twice = reduced.Reduce();
    EXPECT_EQ(twice.size(), reduced.size());
    EXPECT_TRUE(twice.EquivalentTo(reduced));
    // No FinD refines another in a reduced cover.
    for (size_t i = 0; i < reduced.size(); ++i) {
      for (size_t j = 0; j < reduced.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(Refines(reduced.finds()[i], reduced.finds()[j]))
            << reduced.ToString(table_);
      }
    }
  }
}

TEST_F(FinDTest, RestrictProjectsDependencies) {
  FinDSet set;
  set.Add(FinD{SymbolSet({S("x")}), SymbolSet({S("q")})});
  set.Add(FinD{SymbolSet({S("q")}), SymbolSet({S("y")})});
  SymbolSet visible({S("x"), S("y")});
  FinDSet projected = set.Restrict(visible);
  // x -> y must survive the projection even though it passes through q.
  EXPECT_TRUE(projected.Entails(SymbolSet({S("x")}), SymbolSet({S("y")})));
  for (const FinD& f : projected) {
    EXPECT_TRUE(f.lhs.IsSubsetOf(visible));
    EXPECT_TRUE(f.rhs.IsSubsetOf(visible));
  }
}

TEST_F(FinDTest, RestrictHeuristicSoundAgainstExact) {
  std::mt19937_64 rng(31);
  std::vector<Symbol> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(S("p" + std::to_string(i)));
  for (int trial = 0; trial < 100; ++trial) {
    FinDSet set;
    for (int i = 0, n = static_cast<int>(rng() % 6); i < n; ++i) {
      SymbolSet lhs, rhs;
      for (int j = 0, nl = static_cast<int>(rng() % 2); j < nl; ++j) {
        lhs.Insert(pool[rng() % pool.size()]);
      }
      rhs.Insert(pool[rng() % pool.size()]);
      set.Add(FinD{lhs, rhs});
    }
    SymbolSet visible({pool[0], pool[1], pool[2]});
    FinDSet heuristic = set.Restrict(visible);
    FinDSet exact = set.RestrictExact(visible);
    // Soundness: everything the heuristic claims, the exact version entails.
    EXPECT_TRUE(exact.EntailsAll(heuristic))
        << set.ToString(table_) << " -> " << heuristic.ToString(table_)
        << " vs " << exact.ToString(table_);
  }
}

TEST_F(FinDTest, MeetKeepsOnlyCommonFinDs) {
  SymbolSet vars({S("x"), S("y")});
  FinDSet left;   // R(x) and f(x)=y: {} -> x, x -> y
  left.Add(FinD{SymbolSet{}, SymbolSet({S("x")})});
  left.Add(FinD{SymbolSet({S("x")}), SymbolSet({S("y")})});
  FinDSet right;  // S(y) and g(y)=x: {} -> y, y -> x
  right.Add(FinD{SymbolSet{}, SymbolSet({S("y")})});
  right.Add(FinD{SymbolSet({S("y")}), SymbolSet({S("x")})});
  FinDSet meet = left.Meet(right, vars);
  // Both bound everything from nothing, so the meet does too (paper's q5).
  EXPECT_TRUE(meet.Entails(SymbolSet{}, vars));
}

TEST_F(FinDTest, MeetDropsOneSidedInformation) {
  SymbolSet vars({S("x"), S("y")});
  FinDSet left;
  left.Add(FinD{SymbolSet{}, SymbolSet({S("x"), S("y")})});
  FinDSet right;
  right.Add(FinD{SymbolSet({S("x")}), SymbolSet({S("y")})});
  FinDSet meet = left.Meet(right, vars);
  EXPECT_FALSE(meet.Entails(SymbolSet{}, SymbolSet({S("y")})));
  EXPECT_TRUE(meet.Entails(SymbolSet({S("x")}), SymbolSet({S("y")})));
}

TEST_F(FinDTest, MeetHeuristicSoundAgainstExact) {
  std::mt19937_64 rng(41);
  std::vector<Symbol> pool;
  for (int i = 0; i < 5; ++i) pool.push_back(S("m" + std::to_string(i)));
  SymbolSet vars(pool);
  auto random_set = [&] {
    FinDSet set;
    for (int i = 0, n = static_cast<int>(rng() % 5); i < n; ++i) {
      SymbolSet lhs, rhs;
      for (int j = 0, nl = static_cast<int>(rng() % 2); j < nl; ++j) {
        lhs.Insert(pool[rng() % pool.size()]);
      }
      rhs.Insert(pool[rng() % pool.size()]);
      set.Add(FinD{lhs, rhs});
    }
    return set;
  };
  for (int trial = 0; trial < 100; ++trial) {
    FinDSet a = random_set();
    FinDSet b = random_set();
    FinDSet heuristic = a.Meet(b, vars);
    FinDSet exact = a.MeetExact(b, vars);
    EXPECT_TRUE(exact.EntailsAll(heuristic));
    // Both directions of soundness vs the inputs.
    EXPECT_TRUE(a.EntailsAll(heuristic));
    EXPECT_TRUE(b.EntailsAll(heuristic));
  }
}

// --- bd() over formulas ---

class BoundTest : public ::testing::Test {
 protected:
  const Formula* Parse(std::string_view text) {
    auto f = ParseFormula(ctx_, text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    return *f;
  }
  Symbol S(std::string_view name) { return ctx_.symbols().Intern(name); }
  AstContext ctx_;
};

TEST_F(BoundTest, RelationAtomBoundsDirectVars) {
  FinDSet bd = BoundingFinDs(ctx_, Parse("R(x, f(y), z)"));
  EXPECT_TRUE(bd.Entails(SymbolSet{}, SymbolSet({S("x"), S("z")})));
  EXPECT_FALSE(bd.Entails(SymbolSet{}, SymbolSet({S("y")})));
  EXPECT_FALSE(bd.Entails(SymbolSet({S("x"), S("z")}), SymbolSet({S("y")})));
}

TEST_F(BoundTest, EqualityBoundsVariableSides) {
  FinDSet bd = BoundingFinDs(ctx_, Parse("f(x) = y"));
  EXPECT_TRUE(bd.Entails(SymbolSet({S("x")}), SymbolSet({S("y")})));
  EXPECT_FALSE(bd.Entails(SymbolSet({S("y")}), SymbolSet({S("x")})));

  FinDSet both = BoundingFinDs(ctx_, Parse("x = y"));
  EXPECT_TRUE(both.Entails(SymbolSet({S("x")}), SymbolSet({S("y")})));
  EXPECT_TRUE(both.Entails(SymbolSet({S("y")}), SymbolSet({S("x")})));

  FinDSet konst = BoundingFinDs(ctx_, Parse("x = 5"));
  EXPECT_TRUE(konst.Entails(SymbolSet{}, SymbolSet({S("x")})));
}

TEST_F(BoundTest, InequalityAndNegatedAtomsBoundNothing) {
  EXPECT_TRUE(BoundingFinDs(ctx_, Parse("f(x) != y")).empty());
  EXPECT_TRUE(BoundingFinDs(ctx_, Parse("not R(x)")).empty());
}

TEST_F(BoundTest, NegatedInequalityBoundsLikeEquality) {
  FinDSet bd = BoundingFinDs(ctx_, Parse("not (f(x) != y)"));
  EXPECT_TRUE(bd.Entails(SymbolSet({S("x")}), SymbolSet({S("y")})));
}

TEST_F(BoundTest, ConjunctionUnionsAndChains) {
  FinDSet bd = BoundingFinDs(ctx_, Parse("R(x) and f(x) = y"));
  EXPECT_TRUE(bd.Entails(SymbolSet{}, SymbolSet({S("x"), S("y")})));
}

TEST_F(BoundTest, DisjunctionMeets) {
  // Paper's q5 body: both disjuncts bound {x,y} from nothing.
  FinDSet bd = BoundingFinDs(
      ctx_, Parse("(R(x) and f(x) = y) or (S(y) and g(y) = x)"));
  EXPECT_TRUE(bd.Entails(SymbolSet{}, SymbolSet({S("x"), S("y")})));
  // One-sided bounding does not survive the meet.
  FinDSet partial =
      BoundingFinDs(ctx_, Parse("(R(x) and S(y)) or (R(x) and f(x) != y)"));
  EXPECT_TRUE(partial.Entails(SymbolSet{}, SymbolSet({S("x")})));
  EXPECT_FALSE(partial.Entails(SymbolSet{}, SymbolSet({S("y")})));
}

TEST_F(BoundTest, ExistsProjectsAwayQuantifiedVars) {
  FinDSet bd = BoundingFinDs(ctx_, Parse("exists q (R(q, x) and f(q) = y)"));
  EXPECT_TRUE(bd.Entails(SymbolSet{}, SymbolSet({S("x"), S("y")})));
  SymbolSet mentioned = bd.Vars();
  EXPECT_FALSE(mentioned.Contains(S("q")));
}

TEST_F(BoundTest, Q4NegationExposesBounding) {
  // The q4 pattern: bounding for y hides under a negated conjunction of
  // inequalities; bd must push through (rule B6 + pushnot).
  FinDSet bd = BoundingFinDs(
      ctx_,
      Parse("not (((f(x) != y and g(x) != y) or R(x, y)) and "
            "((h(x) != y and k(x) != y) or P(x, y)))"));
  EXPECT_TRUE(bd.Entails(SymbolSet({S("x")}), SymbolSet({S("y")})));
  EXPECT_FALSE(bd.Entails(SymbolSet{}, SymbolSet({S("x")})));
}

TEST_F(BoundTest, ReducedAndNaiveCoversAgree) {
  const char* corpus[] = {
      "R(x) and f(x) = y",
      "(R(x) and f(x) = y) or (S(y) and g(y) = x)",
      "exists q (R(q) and f(q) = x) and S(y)",
      "R(x, y, z) and not S(y, z)",
      "R(x) and exists y (f(x) = y and not R(y))",
  };
  for (const char* text : corpus) {
    BoundOptions reduced;
    reduced.use_reduced_covers = true;
    BoundOptions naive;
    naive.use_reduced_covers = false;
    FinDSet a = BoundingFinDs(ctx_, Parse(text), reduced);
    FinDSet b = BoundingFinDs(ctx_, Parse(text), naive);
    EXPECT_TRUE(a.EquivalentTo(b)) << text << ": " << a.ToString(ctx_.symbols())
                                   << " vs " << b.ToString(ctx_.symbols());
  }
}

TEST_F(BoundTest, AnalyzerCachesResults) {
  BoundAnalyzer analyzer(ctx_);
  const Formula* f = Parse("R(x) and f(x) = y");
  analyzer.Bound(f);
  size_t after_first = analyzer.computations();
  analyzer.Bound(f);
  EXPECT_EQ(analyzer.computations(), after_first);
}

}  // namespace
}  // namespace emcalc
