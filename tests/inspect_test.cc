// Tests for the offline analyzer library behind emcalc-inspect
// (src/obs/inspect.h): golden output over the checked-in sample query log,
// aggregate correctness over a generated 1000-record log, and the bundle /
// Chrome-trace renderers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/inspect.h"
#include "src/obs/json.h"
#include "src/obs/query_log.h"

#ifndef EMCALC_TESTDATA_DIR
#error "EMCALC_TESTDATA_DIR must point at tests/testdata"
#endif

namespace emcalc {
namespace {

obs::QueryLogScan SampleScan() {
  auto scan = obs::ReadQueryLog(std::string(EMCALC_TESTDATA_DIR) +
                                "/sample_query_log.jsonl");
  EXPECT_TRUE(scan.ok()) << scan.status().ToString();
  return scan.ok() ? *scan : obs::QueryLogScan{};
}

TEST(InspectSampleLogTest, ScanCountsRecordsAndBadLines) {
  obs::QueryLogScan scan = SampleScan();
  EXPECT_EQ(scan.records.size(), 11u);
  EXPECT_EQ(scan.bad_lines, 1u);  // the line clipped by the "crash"
}

TEST(InspectSampleLogTest, TopSlowestOrdersByWallTime) {
  std::string out = obs::RenderTopSlowest(SampleScan(), 3);
  EXPECT_EQ(out,
            "top 3 slowest runs\n"
            "  1. 12.000ms rows=10 eff=75%  {x | exists y (Q2(x, y))}\n"
            "  2. 9.000ms rows=25  {x | Q9(x)}\n"
            "  3. 7.000ms rows=50 eff=60%  {x | exists y (Q8(x, y))}\n");
}

TEST(InspectSampleLogTest, TopSlowestMarksAbortsAndErrors) {
  std::string out = obs::RenderTopSlowest(SampleScan(), 9);
  EXPECT_NE(out.find("aborted=max_bytes  {x | Q3(x, x)}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("error  {x | Q5(x)}"), std::string::npos) << out;
}

TEST(InspectSampleLogTest, AbortsBreakDownByLimit) {
  std::string out = obs::RenderAborts(SampleScan());
  EXPECT_EQ(out,
            "aborts: 3 of 9 runs\n"
            "  max_bytes: 2\n"
            "    e.g. {x | Q3(x, x)}\n"
            "  max_rows: 1\n"
            "    e.g. {x | Q7(x)}\n"
            "errors (non-governor): 1\n");
}

TEST(InspectSampleLogTest, MisestimatesAggregateByOperator) {
  std::string out = obs::RenderMisestimates(SampleScan(), 10);
  EXPECT_EQ(out,
            "misestimates by operator (worst first)\n"
            "  HashJoin: count=2 worst=32.0x mean=18.0x\n"
            "  Scan(R): count=1 worst=2.5x mean=2.5x\n");
}

TEST(InspectSampleLogTest, SummaryRollsUpRunsAndWall) {
  std::string out = obs::RenderLogSummary(SampleScan());
  EXPECT_NE(out.find("records: 11 (compile=2 run=9, bad lines=1)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("runs: ok=5 errors=1 aborts=3"), std::string::npos)
      << out;
  EXPECT_NE(out.find("max=12.000ms"), std::string::npos) << out;
  EXPECT_NE(out.find("rows out: 190"), std::string::npos) << out;
  EXPECT_NE(out.find("parallel runs: 2"), std::string::npos) << out;
}

// A generated 1000-record log with known aggregates: wall time rises with
// the index, every 100th run trips max_bytes, every 250th errors plainly.
obs::QueryLogScan GeneratedScan() {
  std::string text;
  for (int i = 0; i < 1000; ++i) {
    obs::QueryLogRecord r;
    r.event = "run";
    r.query = "q" + std::to_string(i);
    r.query_hash = obs::HashQueryText(r.query);
    r.wall_ns = static_cast<uint64_t>(i + 1) * 1000;
    r.rows_out = static_cast<uint64_t>(i);
    if (i % 100 == 0) {
      r.ok = false;
      r.aborted_limit = "max_bytes";
      r.error = "RESOURCE_EXHAUSTED: max_bytes exceeded";
    } else if (i % 250 == 51) {
      r.ok = false;
      r.error = "INVALID_ARGUMENT: bad";
    }
    text += obs::QueryLogRecordToJson(r) + "\n";
  }
  return obs::ParseQueryLogText(text);
}

TEST(InspectGeneratedLogTest, TopFiveAreTheFiveSlowest) {
  obs::QueryLogScan scan = GeneratedScan();
  ASSERT_EQ(scan.records.size(), 1000u);
  ASSERT_EQ(scan.bad_lines, 0u);
  std::string out = obs::RenderTopSlowest(scan, 5);
  EXPECT_EQ(out,
            "top 5 slowest runs\n"
            "  1. 1.000ms rows=999  q999\n"
            "  2. 0.999ms rows=998  q998\n"
            "  3. 0.998ms rows=997  q997\n"
            "  4. 0.997ms rows=996  q996\n"
            "  5. 0.996ms rows=995  q995\n");
}

TEST(InspectGeneratedLogTest, AbortCountsAreExact) {
  std::string out = obs::RenderAborts(GeneratedScan());
  EXPECT_NE(out.find("aborts: 10 of 1000 runs"), std::string::npos) << out;
  EXPECT_NE(out.find("  max_bytes: 10\n    e.g. q0\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("errors (non-governor): 4"), std::string::npos) << out;
}

TEST(InspectBundleTest, ParsesRendersAndConvertsToChromeTrace) {
  std::string json =
      "{\"schema\":1,\"reason\":\"governor_abort\",\"query_hash\":\"42\","
      "\"query\":\"{x | R(x)}\",\"error\":\"RESOURCE_EXHAUSTED: max_bytes "
      "exceeded\",\"aborted_limit\":\"max_bytes\","
      "\"profile\":{\"op\":\"Scan\"},"
      "\"flight_recorder\":["
      "{\"ts_ns\":100,\"tid\":1,\"kind\":\"span_begin\",\"name\":\"exec.run\","
      "\"arg\":0},"
      "{\"ts_ns\":150,\"tid\":1,\"kind\":\"governor_trip\","
      "\"name\":\"max_bytes\",\"arg\":4096},"
      "{\"ts_ns\":200,\"tid\":1,\"kind\":\"span_end\",\"name\":\"exec.run\","
      "\"arg\":0}]}";
  auto bundle = obs::ParsePostmortemBundle(json);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->reason, "governor_abort");
  EXPECT_EQ(bundle->aborted_limit, "max_bytes");
  EXPECT_EQ(bundle->query_hash, "42");
  ASSERT_EQ(bundle->events.size(), 3u);
  EXPECT_EQ(bundle->events[1].kind, "governor_trip");
  EXPECT_EQ(bundle->events[1].arg, 4096u);

  std::string rendered = obs::RenderBundle(*bundle);
  EXPECT_NE(rendered.find("reason: governor_abort"), std::string::npos);
  EXPECT_NE(rendered.find("aborted_limit: max_bytes"), std::string::npos);
  EXPECT_NE(rendered.find("flight events: 3"), std::string::npos);
  EXPECT_NE(rendered.find("150 tid=1 governor_trip max_bytes arg=4096"),
            std::string::npos)
      << rendered;

  std::string trace = obs::BundleToChromeTrace(*bundle);
  auto doc = obs::ParseJson(trace);
  ASSERT_TRUE(doc.ok()) << trace;
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 3u);
  EXPECT_EQ(events->array[0].StringOr("ph", ""), "B");
  EXPECT_EQ(events->array[1].StringOr("ph", ""), "i");
  EXPECT_EQ(events->array[2].StringOr("ph", ""), "E");
  // Span begin/end pair up on the same name and tid.
  EXPECT_EQ(events->array[0].StringOr("name", ""),
            events->array[2].StringOr("name", ""));
  EXPECT_EQ(events->array[0].NumberOr("tid", -1),
            events->array[2].NumberOr("tid", -1));
}

TEST(InspectBundleTest, RejectsNonObjectAndBadJson) {
  EXPECT_FALSE(obs::ParsePostmortemBundle("[1,2]").ok());
  EXPECT_FALSE(obs::ParsePostmortemBundle("{not json").ok());
}

}  // namespace
}  // namespace emcalc
