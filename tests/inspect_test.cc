// Tests for the offline analyzer library behind emcalc-inspect
// (src/obs/inspect.h): golden output over the checked-in sample query log,
// aggregate correctness over a generated 1000-record log, rotation-aware
// log reading, the history-store digest and diff renderers, and the
// bundle / Chrome-trace renderers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/obs/history.h"
#include "src/obs/inspect.h"
#include "src/obs/json.h"
#include "src/obs/query_log.h"

#ifndef EMCALC_TESTDATA_DIR
#error "EMCALC_TESTDATA_DIR must point at tests/testdata"
#endif

namespace emcalc {
namespace {

obs::QueryLogScan SampleScan() {
  auto scan = obs::ReadQueryLog(std::string(EMCALC_TESTDATA_DIR) +
                                "/sample_query_log.jsonl");
  EXPECT_TRUE(scan.ok()) << scan.status().ToString();
  return scan.ok() ? *scan : obs::QueryLogScan{};
}

TEST(InspectSampleLogTest, ScanCountsRecordsAndBadLines) {
  obs::QueryLogScan scan = SampleScan();
  EXPECT_EQ(scan.records.size(), 11u);
  EXPECT_EQ(scan.bad_lines, 1u);  // the line clipped by the "crash"
}

TEST(InspectSampleLogTest, TopSlowestOrdersByWallTime) {
  std::string out = obs::RenderTopSlowest(SampleScan(), 3);
  EXPECT_EQ(out,
            "top 3 slowest runs\n"
            "  1. 12.000ms rows=10 eff=75%  {x | exists y (Q2(x, y))}\n"
            "  2. 9.000ms rows=25  {x | Q9(x)}\n"
            "  3. 7.000ms rows=50 eff=60%  {x | exists y (Q8(x, y))}\n");
}

TEST(InspectSampleLogTest, TopSlowestMarksAbortsAndErrors) {
  std::string out = obs::RenderTopSlowest(SampleScan(), 9);
  EXPECT_NE(out.find("aborted=max_bytes  {x | Q3(x, x)}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("error  {x | Q5(x)}"), std::string::npos) << out;
}

TEST(InspectSampleLogTest, AbortsBreakDownByLimit) {
  std::string out = obs::RenderAborts(SampleScan());
  EXPECT_EQ(out,
            "aborts: 3 of 9 runs\n"
            "  max_bytes: 2\n"
            "    e.g. {x | Q3(x, x)}\n"
            "  max_rows: 1\n"
            "    e.g. {x | Q7(x)}\n"
            "errors (non-governor): 1\n");
}

TEST(InspectSampleLogTest, MisestimatesAggregateByOperator) {
  std::string out = obs::RenderMisestimates(SampleScan(), 10);
  EXPECT_EQ(out,
            "misestimates by operator (worst first)\n"
            "  HashJoin: count=2 worst=32.0x mean=18.0x\n"
            "  Scan(R): count=1 worst=2.5x mean=2.5x\n");
}

TEST(InspectSampleLogTest, SummaryRollsUpRunsAndWall) {
  std::string out = obs::RenderLogSummary(SampleScan());
  EXPECT_NE(out.find("records: 11 (compile=2 run=9, bad lines=1)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("runs: ok=5 errors=1 aborts=3"), std::string::npos)
      << out;
  EXPECT_NE(out.find("max=12.000ms"), std::string::npos) << out;
  EXPECT_NE(out.find("rows out: 190"), std::string::npos) << out;
  EXPECT_NE(out.find("parallel runs: 2"), std::string::npos) << out;
}

// A generated 1000-record log with known aggregates: wall time rises with
// the index, every 100th run trips max_bytes, every 250th errors plainly.
obs::QueryLogScan GeneratedScan() {
  std::string text;
  for (int i = 0; i < 1000; ++i) {
    obs::QueryLogRecord r;
    r.event = "run";
    r.query = "q" + std::to_string(i);
    r.query_hash = obs::HashQueryText(r.query);
    r.wall_ns = static_cast<uint64_t>(i + 1) * 1000;
    r.rows_out = static_cast<uint64_t>(i);
    if (i % 100 == 0) {
      r.ok = false;
      r.aborted_limit = "max_bytes";
      r.error = "RESOURCE_EXHAUSTED: max_bytes exceeded";
    } else if (i % 250 == 51) {
      r.ok = false;
      r.error = "INVALID_ARGUMENT: bad";
    }
    text += obs::QueryLogRecordToJson(r) + "\n";
  }
  return obs::ParseQueryLogText(text);
}

TEST(InspectGeneratedLogTest, TopFiveAreTheFiveSlowest) {
  obs::QueryLogScan scan = GeneratedScan();
  ASSERT_EQ(scan.records.size(), 1000u);
  ASSERT_EQ(scan.bad_lines, 0u);
  std::string out = obs::RenderTopSlowest(scan, 5);
  EXPECT_EQ(out,
            "top 5 slowest runs\n"
            "  1. 1.000ms rows=999  q999\n"
            "  2. 0.999ms rows=998  q998\n"
            "  3. 0.998ms rows=997  q997\n"
            "  4. 0.997ms rows=996  q996\n"
            "  5. 0.996ms rows=995  q995\n");
}

TEST(InspectGeneratedLogTest, AbortCountsAreExact) {
  std::string out = obs::RenderAborts(GeneratedScan());
  EXPECT_NE(out.find("aborts: 10 of 1000 runs"), std::string::npos) << out;
  EXPECT_NE(out.find("  max_bytes: 10\n    e.g. q0\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("errors (non-governor): 4"), std::string::npos) << out;
}

// A fresh directory under the test tmpdir; removed at scope exit.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) {
    path_ = ::testing::TempDir() + "emcalc_" + tag + "_" +
            std::to_string(::getpid());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string RunLine(const std::string& query, uint64_t wall_ns) {
  obs::QueryLogRecord r;
  r.event = "run";
  r.query = query;
  r.query_hash = obs::HashQueryText(query);
  r.wall_ns = wall_ns;
  return obs::QueryLogRecordToJson(r) + "\n";
}

TEST(InspectRotationTest, ReadsRotatedSegmentOldestFirst) {
  ScopedTempDir dir("rotation");
  std::string log = dir.path() + "/query_log.jsonl";
  // The rotated `.1` segment holds the older records (plus one line a
  // crash clipped); the live file holds the newest.
  {
    std::ofstream rotated(log + ".1");
    rotated << RunLine("q_oldest", 1000) << RunLine("q_older", 2000)
            << "{\"event\":\"run\",\"que";
    std::ofstream live(log);
    live << RunLine("q_newest", 3000);
  }
  auto scan = obs::ReadQueryLogWithRotation(log);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].query, "q_oldest");
  EXPECT_EQ(scan->records[1].query, "q_older");
  EXPECT_EQ(scan->records[2].query, "q_newest");
  EXPECT_EQ(scan->bad_lines, 1u);  // summed across both segments
}

TEST(InspectRotationTest, NoRotatedSegmentReadsLiveFileOnly) {
  ScopedTempDir dir("rotation_live");
  std::string log = dir.path() + "/query_log.jsonl";
  {
    std::ofstream live(log);
    live << RunLine("q_only", 500);
  }
  auto scan = obs::ReadQueryLogWithRotation(log);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].query, "q_only");
  // A missing live file is an error even if a `.1` segment existed.
  EXPECT_FALSE(
      obs::ReadQueryLogWithRotation(dir.path() + "/no_such_log").ok());
}

// Builds one aggregated query entry by folding synthetic runs, the same
// code path recording and loading use.
obs::QueryHistory HistoryEntry(uint64_t hash, const std::string& query,
                               std::vector<uint64_t> walls, double factor,
                               uint64_t aborts = 0) {
  obs::QueryHistory h;
  for (size_t i = 0; i < walls.size(); ++i) {
    obs::RunObservation run;
    run.query_hash = hash;
    run.query = query;
    run.wall_ns = walls[i];
    run.rows_out = 10;
    if (aborts > i) {
      run.ok = false;
      run.aborted_limit = "max_bytes";
    }
    obs::RunObservation::Op op;
    op.path = "Scan";
    op.op = "Scan(R)";
    op.est_rows = 10;
    op.actual_rows = static_cast<uint64_t>(10 * factor);
    op.factor = factor;
    run.ops.push_back(op);
    obs::FoldRunObservation(h, run);
  }
  return h;
}

obs::HistoryScan TwoQueryScan() {
  obs::HistoryScan scan;
  // Hash 3: badly misestimated, slow, and regressing (newest wall is 4x
  // its own mean). Hash 5: healthy.
  scan.entries.push_back(
      HistoryEntry(3, "{x | Bad(x)}", {100000, 100000, 600000}, 8.0,
                   /*aborts=*/1));
  scan.entries.push_back(
      HistoryEntry(5, "{x | Good(x)}", {50000, 50000, 50000}, 1.0));
  scan.total_runs = 6;
  return scan;
}

TEST(InspectHistoryTest, RenderHistoryListsWorstSlowestAndRegressed) {
  std::string out = obs::RenderHistory(TwoQueryScan(), 10);
  EXPECT_NE(out.find("history: 2 queries, 6 runs"), std::string::npos)
      << out;
  EXPECT_NE(out.find("failures: aborts=1 errors=0"), std::string::npos)
      << out;
  // Worst misestimation leads, and the healthy query follows.
  size_t bad = out.find("worst=8.0x");
  size_t good = out.find("worst=1.0x");
  ASSERT_NE(bad, std::string::npos) << out;
  ASSERT_NE(good, std::string::npos) << out;
  EXPECT_LT(bad, good);
  EXPECT_NE(out.find("{x | Bad(x)}"), std::string::npos) << out;
  // Hash 3's newest run is well above its mean, so it is regressed; the
  // trend sparkline marks the jump.
  EXPECT_NE(out.find("regressed"), std::string::npos) << out;
  EXPECT_NE(out.find("trend="), std::string::npos) << out;
}

TEST(InspectHistoryTest, RenderHistoryDiffFlagsGrownQueries) {
  obs::HistoryScan base = TwoQueryScan();
  obs::HistoryScan cur;
  // Hash 3 doubled its mean wall time; hash 5 is unchanged; hash 7 is new.
  cur.entries.push_back(
      HistoryEntry(3, "{x | Bad(x)}", {500000, 500000, 600000}, 8.0));
  cur.entries.push_back(
      HistoryEntry(5, "{x | Good(x)}", {50000, 50000, 50000}, 1.0));
  cur.entries.push_back(HistoryEntry(7, "{x | New(x)}", {1000}, 1.0));
  cur.total_runs = 7;

  std::string out = obs::RenderHistoryDiff(base, cur, 1.5);
  EXPECT_NE(out.find("2 matched, 1 new, 0 gone"), std::string::npos) << out;
  EXPECT_NE(out.find("{x | Bad(x)}"), std::string::npos) << out;
  // The healthy query must not be flagged.
  EXPECT_EQ(out.find("{x | Good(x)}"), std::string::npos) << out;

  // With a threshold above the worst growth, nothing is flagged.
  std::string quiet = obs::RenderHistoryDiff(base, cur, 10.0);
  EXPECT_EQ(quiet.find("{x | Bad(x)}"), std::string::npos) << quiet;
}

TEST(InspectBundleTest, ParsesRendersAndConvertsToChromeTrace) {
  std::string json =
      "{\"schema\":1,\"reason\":\"governor_abort\",\"query_hash\":\"42\","
      "\"query\":\"{x | R(x)}\",\"error\":\"RESOURCE_EXHAUSTED: max_bytes "
      "exceeded\",\"aborted_limit\":\"max_bytes\","
      "\"profile\":{\"op\":\"Scan\"},"
      "\"flight_recorder\":["
      "{\"ts_ns\":100,\"tid\":1,\"kind\":\"span_begin\",\"name\":\"exec.run\","
      "\"arg\":0},"
      "{\"ts_ns\":150,\"tid\":1,\"kind\":\"governor_trip\","
      "\"name\":\"max_bytes\",\"arg\":4096},"
      "{\"ts_ns\":200,\"tid\":1,\"kind\":\"span_end\",\"name\":\"exec.run\","
      "\"arg\":0}]}";
  auto bundle = obs::ParsePostmortemBundle(json);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->reason, "governor_abort");
  EXPECT_EQ(bundle->aborted_limit, "max_bytes");
  EXPECT_EQ(bundle->query_hash, "42");
  ASSERT_EQ(bundle->events.size(), 3u);
  EXPECT_EQ(bundle->events[1].kind, "governor_trip");
  EXPECT_EQ(bundle->events[1].arg, 4096u);

  std::string rendered = obs::RenderBundle(*bundle);
  EXPECT_NE(rendered.find("reason: governor_abort"), std::string::npos);
  EXPECT_NE(rendered.find("aborted_limit: max_bytes"), std::string::npos);
  EXPECT_NE(rendered.find("flight events: 3"), std::string::npos);
  EXPECT_NE(rendered.find("150 tid=1 governor_trip max_bytes arg=4096"),
            std::string::npos)
      << rendered;

  std::string trace = obs::BundleToChromeTrace(*bundle);
  auto doc = obs::ParseJson(trace);
  ASSERT_TRUE(doc.ok()) << trace;
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 3u);
  EXPECT_EQ(events->array[0].StringOr("ph", ""), "B");
  EXPECT_EQ(events->array[1].StringOr("ph", ""), "i");
  EXPECT_EQ(events->array[2].StringOr("ph", ""), "E");
  // Span begin/end pair up on the same name and tid.
  EXPECT_EQ(events->array[0].StringOr("name", ""),
            events->array[2].StringOr("name", ""));
  EXPECT_EQ(events->array[0].NumberOr("tid", -1),
            events->array[2].NumberOr("tid", -1));
}

TEST(InspectBundleTest, RejectsNonObjectAndBadJson) {
  EXPECT_FALSE(obs::ParsePostmortemBundle("[1,2]").ok());
  EXPECT_FALSE(obs::ParsePostmortemBundle("{not json").ok());
}

}  // namespace
}  // namespace emcalc
