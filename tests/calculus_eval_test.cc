// Tests for the reference calculus evaluator under embedded semantics,
// including domain-independence behavior at different closure levels.
#include <gtest/gtest.h>

#include "src/calculus/parser.h"
#include "src/eval/calculus_eval.h"

namespace emcalc {
namespace {

class CalculusEvalTest : public ::testing::Test {
 protected:
  CalculusEvalTest() : registry_(BuiltinFunctions()) {
    EXPECT_TRUE(db_.Insert("R", {Value::Int(1)}).ok());
    EXPECT_TRUE(db_.Insert("R", {Value::Int(2)}).ok());
    EXPECT_TRUE(db_.Insert("S", {Value::Int(2)}).ok());
    EXPECT_TRUE(db_.Insert("S", {Value::Int(3)}).ok());
    EXPECT_TRUE(
        db_.Insert("E", {Value::Int(1), Value::Int(2)}).ok());
    EXPECT_TRUE(
        db_.Insert("E", {Value::Int(2), Value::Int(3)}).ok());
  }

  Relation Eval(std::string_view text, CalculusEvalOptions options = {}) {
    auto q = ParseQuery(ctx_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto r = EvaluateCalculus(ctx_, *q, db_, registry_, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : Relation(0);
  }

  AstContext ctx_;
  Database db_;
  FunctionRegistry registry_;
};

TEST_F(CalculusEvalTest, AtomsAndConnectives) {
  EXPECT_EQ(Eval("{x | R(x)}").size(), 2u);
  EXPECT_EQ(Eval("{x | R(x) and S(x)}").size(), 1u);
  EXPECT_EQ(Eval("{x | R(x) or S(x)}").size(), 3u);
  EXPECT_EQ(Eval("{x | R(x) and not S(x)}").size(), 1u);
}

TEST_F(CalculusEvalTest, EqualityAndFunctions) {
  Relation r = Eval("{x, y | R(x) and succ(x) = y}");
  EXPECT_TRUE(r.Contains({Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(r.Contains({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(CalculusEvalTest, ExistsAndForall) {
  EXPECT_EQ(Eval("{x | exists y (E(x, y))}").size(), 2u);
  // Every R-element with all outgoing E-edges into S: x=1 ->2 in S ok;
  // x=2 ->3 in S ok.
  EXPECT_EQ(Eval("{x | R(x) and forall y (not E(x, y) or S(y))}").size(),
            2u);
}

TEST_F(CalculusEvalTest, BooleanQueries) {
  Relation yes = Eval("{ | exists x (R(x) and S(x))}");
  EXPECT_EQ(yes.size(), 1u);  // contains the empty tuple
  Relation no = Eval("{ | exists x (R(x) and x = 99)}");
  EXPECT_TRUE(no.empty());
}

TEST_F(CalculusEvalTest, EmbeddedSemanticsSeesFunctionImages) {
  // not S(y) with y = succ(x): needs level-1 closure to range y over
  // succ(adom). succ(2)=3 in S; succ(1)=2 in S; so empty here...
  Relation r = Eval("{x, y | R(x) and succ(x) = y and not S(y)}");
  EXPECT_TRUE(r.empty());
  // ...but with succ(succ(x)) there are hits outside S.
  Relation r2 = Eval("{x, y | R(x) and succ(succ(x)) = y and not S(y)}");
  EXPECT_TRUE(r2.Contains({Value::Int(2), Value::Int(4)}));
}

TEST_F(CalculusEvalTest, EmAllowedAnswersStableUnderLevelIncrease) {
  // Theorem 6.6: once past the needed level, the answer stops changing.
  const char* corpus[] = {
      "{x, y | R(x) and succ(x) = y and not S(y)}",
      "{x | R(x) and exists y (succ(x) = y and not R(y))}",
      "{y | exists x (R(x) and y = double(succ(x)))}",
  };
  for (const char* text : corpus) {
    CalculusEvalOptions base;
    Relation a = Eval(text, base);
    CalculusEvalOptions higher;
    higher.level = 5;
    Relation b = Eval(text, higher);
    EXPECT_EQ(a, b) << text;
  }
}

TEST_F(CalculusEvalTest, EmAllowedAnswersStableUnderJunkValues) {
  // Domain independence: enlarging the evaluation domain with values that
  // appear nowhere must not change an em-allowed query's answer.
  CalculusEvalOptions junk;
  junk.extra_domain = {Value::Int(777), Value::Str("junk")};
  const char* corpus[] = {
      "{x | R(x) and not S(x)}",
      "{x, y | R(x) and succ(x) = y}",
      "{x | R(x) and forall y (not E(x, y) or S(y))}",
  };
  for (const char* text : corpus) {
    EXPECT_EQ(Eval(text), Eval(text, junk)) << text;
  }
}

TEST_F(CalculusEvalTest, UnsafeQueryAnswersChangeWithDomain) {
  // The complement query is *not* domain independent; junk values show up.
  CalculusEvalOptions junk;
  junk.extra_domain = {Value::Int(777)};
  Relation small = Eval("{x | not R(x)}");
  Relation big = Eval("{x | not R(x)}", junk);
  EXPECT_LT(small.size(), big.size());
}

TEST_F(CalculusEvalTest, FormulaAtValuation) {
  auto f = ParseFormula(ctx_, "R(x) and succ(x) = y");
  ASSERT_TRUE(f.ok());
  Symbol x = ctx_.symbols().Intern("x");
  Symbol y = ctx_.symbols().Intern("y");
  auto yes = EvaluateFormulaAt(ctx_, *f, {x, y},
                               {Value::Int(1), Value::Int(2)}, db_,
                               registry_);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = EvaluateFormulaAt(ctx_, *f, {x, y},
                              {Value::Int(1), Value::Int(3)}, db_,
                              registry_);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST_F(CalculusEvalTest, ErrorsOnUnknownNames) {
  auto q = ParseQuery(ctx_, "{x | NOPE(x)}");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(EvaluateCalculus(ctx_, *q, db_, registry_).ok());
  auto q2 = ParseQuery(ctx_, "{x | R(x) and mystery(x) = x}");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(EvaluateCalculus(ctx_, *q2, db_, registry_).ok());
}

TEST_F(CalculusEvalTest, DomainBudgetEnforced) {
  auto q = ParseQuery(ctx_, "{x, y | R(x) and succ(x) = y}");
  ASSERT_TRUE(q.ok());
  CalculusEvalOptions tight;
  tight.level = 50;
  tight.domain_budget = 10;
  EXPECT_FALSE(EvaluateCalculus(ctx_, *q, db_, registry_, tight).ok());
}

}  // namespace
}  // namespace emcalc
