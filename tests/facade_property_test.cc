// Property tests for the facade-level features: view expansion and
// parameterized queries must agree with the equivalent "manual" queries on
// random inputs.
#include <gtest/gtest.h>

#include <string>

#include "src/calculus/analysis.h"
#include "src/calculus/printer.h"
#include "src/core/compiler.h"
#include "src/core/random_query.h"
#include "src/core/workload.h"

namespace emcalc {
namespace {

// Builtins plus the generator's rf0/rf1 functions.
FunctionRegistry TestFunctions() {
  FunctionRegistry reg = BuiltinFunctions();
  reg.Register("rf0", 1, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 2;
    return Value::Int((n + 1) % 6);
  });
  reg.Register("rf1", 2, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 1;
    int64_t m = a[1].is_int() ? a[1].AsInt() : 4;
    return Value::Int((n * 2 + m) % 6);
  });
  return reg;
}

class FacadePropertyTest : public ::testing::TestWithParam<uint64_t> {};

// A query using a view must compute exactly what the hand-inlined query
// computes.
TEST_P(FacadePropertyTest, ViewsAgreeWithManualInlining) {
  struct Case {
    const char* view;       // defined as VIEW
    const char* with_view;  // query using VIEW
    const char* inlined;    // the same query with VIEW expanded by hand
  };
  const Case cases[] = {
      {"{a, b | E0(a, b) and a != b}",
       "{x | exists y (VIEW(x, y) and E1(y))}",
       "{x | exists y (E0(x, y) and x != y and E1(y))}"},
      {"{a | E1(a) and not E2(a, a)}",
       "{x, y | E0(x, y) and VIEW(y)}",
       "{x, y | E0(x, y) and (E1(y) and not E2(y, y))}"},
      {"{a, b | exists c (E2(a, c) and E2(c, b))}",
       "{x | VIEW(x, x)}",
       "{x | exists c (E2(x, c) and E2(c, x))}"},
  };
  Database db;
  AddRandomTuples(db, "E0", 2, 20, 6, GetParam());
  AddRandomTuples(db, "E1", 1, 8, 6, GetParam() + 1);
  AddRandomTuples(db, "E2", 2, 20, 6, GetParam() + 2);
  for (const Case& c : cases) {
    Compiler with_views;
    ASSERT_TRUE(with_views.DefineView("VIEW", c.view).ok()) << c.view;
    auto q1 = with_views.Compile(c.with_view);
    ASSERT_TRUE(q1.ok()) << c.with_view << ": " << q1.status().ToString();
    Compiler plain;
    auto q2 = plain.Compile(c.inlined);
    ASSERT_TRUE(q2.ok()) << c.inlined << ": " << q2.status().ToString();
    auto a = q1->Run(db);
    auto b = q2->Run(db);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << c.with_view;
  }
}

// Running a parameterized query must match compiling the query with the
// arguments substituted as constants, across random argument values.
TEST_P(FacadePropertyTest, ParameterizedMatchesConstantSubstitution) {
  Database db;
  AddRandomTuples(db, "E0", 2, 25, 8, GetParam() * 3);
  AddRandomTuples(db, "E1", 1, 10, 8, GetParam() * 3 + 1);
  struct Case {
    const char* parameterized;
    const char* templated;  // %P replaced by the argument value
  };
  const Case cases[] = {
      {"{x | E0(p, x)}", "{x | E0(%P, x)}"},
      {"{x | E0(x, q) and not E1(x)}", "{x | E0(x, %P) and not E1(x)}"},
      {"{x, y | E0(x, y) and succ(p) = x}",
       "{x, y | E0(x, y) and succ(%P) = x}"},
      {"{x | E1(x) and p <= x}", "{x | E1(x) and %P <= x}"},
  };
  const char* param_names[] = {"p", "q", "p", "p"};
  for (size_t i = 0; i < std::size(cases); ++i) {
    Compiler compiler;
    auto pq = compiler.CompileParameterized(cases[i].parameterized,
                                            {param_names[i]});
    ASSERT_TRUE(pq.ok()) << cases[i].parameterized << ": "
                         << pq.status().ToString();
    for (int64_t value : {0, 3, 7, 100}) {
      auto a = pq->Run(db, {Value::Int(value)});
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      std::string text = cases[i].templated;
      size_t pos = text.find("%P");
      ASSERT_NE(pos, std::string::npos);
      text.replace(pos, 2, std::to_string(value));
      Compiler direct;
      auto dq = direct.Compile(text);
      ASSERT_TRUE(dq.ok()) << text << ": " << dq.status().ToString();
      auto b = dq->Run(db);
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b) << text;
    }
  }
}

// Random em-allowed queries keep working when routed through a view
// ("VIEW(args) == body"), exercising expansion on arbitrary shapes.
TEST_P(FacadePropertyTest, RandomQueriesSurviveViewIndirection) {
  Compiler compiler(TestFunctions());
  RandomQueryGen gen(compiler.ctx(), GetParam() + 777);
  Database db;
  const auto& arities = gen.relation_arities();
  for (size_t i = 0; i < arities.size(); ++i) {
    AddRandomTuples(db, "R" + std::to_string(i), arities[i], 6, 6,
                    GetParam() * 11 + i);
  }
  int checked = 0;
  for (int i = 0; i < 30 && checked < 5; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    if (q->head.empty() || CountApplications(q->body) > 3) continue;
    std::string body_text = QueryToString(compiler.ctx(), *q);
    Compiler with_view(TestFunctions());
    if (!with_view.DefineView("W", body_text).ok()) continue;
    std::string args;
    for (size_t j = 0; j < q->head.size(); ++j) {
      if (j > 0) args += ", ";
      args +=
          std::string(compiler.ctx().symbols().Name(q->head[j]));
    }
    std::string head = args;
    auto via_view =
        with_view.Compile("{" + head + " | W(" + args + ")}");
    if (!via_view.ok()) continue;
    Compiler direct(TestFunctions());
    auto plain = direct.Compile(body_text);
    ASSERT_TRUE(plain.ok()) << body_text;
    auto a = via_view->Run(db);
    auto b = plain->Run(db);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << body_text;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FacadePropertyTest,
                         ::testing::Values(51, 52, 53, 54));

}  // namespace
}  // namespace emcalc
