// Tests for the diagnostics engine: source spans through the parser,
// located parse errors, the safety blame trace (golden renderings for the
// paper's Section-1 unsafe examples), the lint rules, the query-log
// diagnostics attachment, and the JSON round-trip.
#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/compiler.h"
#include "src/core/random_query.h"
#include "src/diag/blame.h"
#include "src/diag/diagnostic.h"
#include "src/diag/lint.h"
#include "src/diag/source.h"
#include "src/finds/find_set.h"
#include "src/obs/json.h"
#include "src/obs/query_log.h"
#include "src/safety/em_allowed.h"

namespace emcalc {
namespace {

using diag::Diagnostic;
using diag::Severity;
using diag::SourceSpan;

// --- source positions ---

TEST(SourceTest, ResolveLineCol) {
  std::string_view src = "ab\ncde\nf";
  EXPECT_EQ(diag::ResolveLineCol(src, 0).line, 1);
  EXPECT_EQ(diag::ResolveLineCol(src, 0).column, 1);
  EXPECT_EQ(diag::ResolveLineCol(src, 3).line, 2);
  EXPECT_EQ(diag::ResolveLineCol(src, 3).column, 1);
  EXPECT_EQ(diag::ResolveLineCol(src, 5).line, 2);
  EXPECT_EQ(diag::ResolveLineCol(src, 5).column, 3);
  EXPECT_EQ(diag::ResolveLineCol(src, 7).line, 3);
  // Past-the-end clamps.
  EXPECT_EQ(diag::ResolveLineCol(src, 99).line, 3);
}

TEST(SourceTest, CaretSnippetUnderlinesSpan) {
  std::string snip = diag::CaretSnippet("{x | not R(x)}", {5, 13});
  EXPECT_EQ(snip,
            "  | {x | not R(x)}\n"
            "  |      ^~~~~~~~\n");
}

// --- parser spans ---

class SpanTest : public ::testing::Test {
 protected:
  const SourceSpan* SpanOfBody(std::string_view text) {
    auto q = ParseQuery(ctx_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    body_ = q->body;
    return ctx_.SpanOf(q->body);
  }
  AstContext ctx_;
  const Formula* body_ = nullptr;
};

TEST_F(SpanTest, BodySpanCoversSourceText) {
  std::string text = "{x | not R(x)}";
  const SourceSpan* span = SpanOfBody(text);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(text.substr(span->begin, span->end - span->begin), "not R(x)");
}

TEST_F(SpanTest, AtomAndQuantifierSpans) {
  std::string text = "{x | R(x) and exists y (S(x, y))}";
  const SourceSpan* span = SpanOfBody(text);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(text.substr(span->begin, span->end - span->begin),
            "R(x) and exists y (S(x, y))");
  ASSERT_EQ(body_->kind(), FormulaKind::kAnd);
  const SourceSpan* left = ctx_.SpanOf(body_->children()[0]);
  const SourceSpan* right = ctx_.SpanOf(body_->children()[1]);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(text.substr(left->begin, left->end - left->begin), "R(x)");
  EXPECT_EQ(text.substr(right->begin, right->end - right->begin),
            "exists y (S(x, y))");
}

TEST_F(SpanTest, SharedSingletonsNeverGetSpans) {
  auto q = ParseQuery(ctx_, "{x | R(x) and true}");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ctx_.SpanOf(ctx_.True()), nullptr);
  EXPECT_EQ(ctx_.SpanOf(ctx_.False()), nullptr);
}

TEST_F(SpanTest, ParseErrorReportsLineColumnAndCaret) {
  ParseErrorInfo info;
  auto q = ParseQuery(ctx_, "{x | R(x and}", &info);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("line 1, column 10"),
            std::string::npos)
      << q.status().ToString();
  EXPECT_NE(q.status().message().find("^"), std::string::npos);
  EXPECT_EQ(info.offset, 9u);
  EXPECT_EQ(info.message, "expected ')'");
}

TEST_F(SpanTest, MultiLineParseErrorPosition) {
  ParseErrorInfo info;
  auto q = ParseQuery(ctx_, "{x |\n  R(x) and\n  not }", &info);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("line 3"), std::string::npos)
      << q.status().ToString();
}

// --- FinD closure traces ---

TEST(TraceClosureTest, RecordsFiringOrderAndBlockedFinDs) {
  SymbolTable syms;
  Symbol a = syms.Intern("a"), b = syms.Intern("b"), c = syms.Intern("c"),
         d = syms.Intern("d");
  FinDSet finds;
  finds.Add({SymbolSet{}, SymbolSet{a}});
  finds.Add({SymbolSet{a}, SymbolSet{b}});
  finds.Add({SymbolSet{c}, SymbolSet{d}});
  FinDSet::ClosureTrace trace = finds.TraceClosure(SymbolSet{});
  EXPECT_EQ(trace.closure, (SymbolSet{a, b}));
  EXPECT_EQ(trace.closure, finds.Closure(SymbolSet{}));
  EXPECT_EQ(trace.closure, finds.LinearClosure(SymbolSet{}));
  ASSERT_EQ(trace.steps.size(), 2u);
  EXPECT_EQ(trace.steps[0].find_index, 0u);
  EXPECT_EQ(trace.steps[0].added, SymbolSet{a});
  EXPECT_EQ(trace.steps[1].find_index, 1u);
  EXPECT_EQ(trace.steps[1].added, SymbolSet{b});
  ASSERT_EQ(trace.blocked.size(), 1u);
  EXPECT_EQ(trace.blocked[0], 2u);
}

TEST(TraceClosureTest, MatchesClosureOnRandomSets) {
  SymbolTable syms;
  std::vector<Symbol> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(syms.Intern("v" + std::to_string(i)));
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int round = 0; round < 200; ++round) {
    FinDSet finds;
    for (int i = 0; i < 4; ++i) {
      SymbolSet lhs, rhs;
      for (Symbol v : pool) {
        if (next() % 3 == 0) lhs.Insert(v);
        if (next() % 3 == 0) rhs.Insert(v);
      }
      finds.Add({lhs, rhs});
    }
    SymbolSet start;
    for (Symbol v : pool) {
      if (next() % 4 == 0) start.Insert(v);
    }
    FinDSet::ClosureTrace trace = finds.TraceClosure(start);
    EXPECT_EQ(trace.closure, finds.Closure(start));
    // Every blocked FinD really has an unconfined lhs variable.
    for (size_t i : trace.blocked) {
      EXPECT_FALSE(finds.finds()[i].lhs.IsSubsetOf(trace.closure));
    }
  }
}

// --- structured safety results ---

class BlameTest : public ::testing::Test {
 protected:
  // Full front-end analysis, rendered (the golden form).
  std::string Render(std::string_view text) {
    emcalc::QueryAnalysis a = compiler_.Analyze(text);
    return a.Render();
  }
  Compiler compiler_;
};

TEST_F(BlameTest, StructuredFieldsOnRejection) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | not R(x)}");
  ASSERT_TRUE(q.ok());
  SafetyResult r = CheckEmAllowed(ctx, *q);
  ASSERT_FALSE(r.em_allowed);
  EXPECT_EQ(r.violation, SafetyViolation::kUnboundedFree);
  EXPECT_EQ(SafetyViolationCode(r.violation), "safety.unbounded-free");
  EXPECT_TRUE(r.unbounded.Contains(ctx.symbols().Intern("x")));
  EXPECT_TRUE(r.blame_context.empty());
  ASSERT_NE(r.blamed, nullptr);
  ASSERT_NE(r.checked, nullptr);
  // Back-compat: the flat reason string still names the variable.
  EXPECT_NE(r.reason.find("x"), std::string::npos);
}

TEST_F(BlameTest, AcceptedQueryHasNoViolation) {
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | R(x)}");
  ASSERT_TRUE(q.ok());
  SafetyResult r = CheckEmAllowed(ctx, *q);
  EXPECT_TRUE(r.em_allowed);
  EXPECT_EQ(r.violation, SafetyViolation::kNone);
  EXPECT_EQ(SafetyViolationCode(r.violation), "");
  EXPECT_TRUE(r.unbounded.empty());
  EXPECT_TRUE(r.reason.empty());
}

// Golden blame traces for the paper's Section-1 unsafe examples.

TEST_F(BlameTest, GoldenNegatedAtom) {
  // {x | not R(x)}: x ranges over everything outside R.
  EXPECT_EQ(Render("{x | not R(x)}"),
            "error[safety.unbounded-free]: variables {x} cannot be confined"
            " to a finite set\n"
            " --> line 1, column 6\n"
            "  | {x | not R(x)}\n"
            "  |      ^~~~~~~~\n"
            "  = note: em-allowed condition (1) failed at subformula:"
            " not R(x)\n"
            "  = note: needed: {} -> {x}\n"
            "  = note: bd = {  }\n"
            "  = note: no finiteness dependency was applicable from"
            " context {}\n"
            "  = note: closure reached {}; never confined: {x}\n");
}

TEST_F(BlameTest, GoldenFunctionInversion) {
  // {x | exists y (R(y) and f(x) = y)}: knowing f(x) does not pin down x
  // (no inverse declared) — the paper's function-inversion example.
  EXPECT_EQ(Render("{x | exists y (R(y) and f(x) = y)}"),
            "error[safety.unbounded-free]: variables {x} cannot be confined"
            " to a finite set\n"
            " --> line 1, column 6\n"
            "  | {x | exists y (R(y) and f(x) = y)}\n"
            "  |      ^~~~~~~~~~~~~~~~~~~~~~~~~~~~\n"
            "  = note: em-allowed condition (1) failed at subformula:"
            " exists y (R(y) and f(x) = y)\n"
            "  = note: needed: {} -> {x}\n"
            "  = note: bd = {  }\n"
            "  = note: no finiteness dependency was applicable from"
            " context {}\n"
            "  = note: closure reached {}; never confined: {x}\n");
}

TEST_F(BlameTest, GoldenUnboundedQuantifier) {
  // Condition (2): the quantified variable never appears, so nothing
  // confines it. The blame trace shows the attempted derivation (bd of the
  // body bounds x but can never reach y) and the lint pass flags the unused
  // quantifier independently.
  EXPECT_EQ(
      Render("{x | R(x) and exists y (S(x))}"),
      "error[safety.unbounded-quantified]: variables {y} cannot be confined"
      " to a finite set\n"
      " --> line 1, column 15\n"
      "  | {x | R(x) and exists y (S(x))}\n"
      "  |               ^~~~~~~~~~~~~~~\n"
      "  = note: em-allowed condition (2) failed at subformula:"
      " exists y (S(x))\n"
      "  = note: checked (after rewriting): S(x)\n"
      "  = note: needed: {x} -> {y}\n"
      "  = note: bd = { {}->{x} }\n"
      "  = note: no finiteness dependency was applicable from context {x}\n"
      "  = note: closure reached {x}; never confined: {y}\n"
      "warning[lint.unused-quantified-var]: quantified variable 'y' is not"
      " used in the body\n"
      " --> line 1, column 15\n"
      "  | {x | R(x) and exists y (S(x))}\n"
      "  |               ^~~~~~~~~~~~~~~\n");
}

TEST_F(BlameTest, GoldenNegatedQuantifier) {
  // Condition (3): the quantifier is checked under a pushed negation; f(y)
  // inside the atom does not make y a direct argument, so bd cannot bound
  // it.
  EXPECT_EQ(
      Render("{x | R(x) and not exists y (T(x, f(y)))}"),
      "error[safety.unbounded-negated]: variables {y} cannot be confined"
      " to a finite set\n"
      " --> line 1, column 15\n"
      "  | {x | R(x) and not exists y (T(x, f(y)))}\n"
      "  |               ^~~~~~~~~~~~~~~~~~~~~~~~~\n"
      "  = note: em-allowed condition (3) failed at subformula:"
      " forall y (not T(x, f(y)))\n"
      "  = note: checked (after rewriting): T(x, f(y))\n"
      "  = note: needed: {x} -> {y}\n"
      "  = note: bd = { {}->{x} }\n"
      "  = note: no finiteness dependency was applicable from context {x}\n"
      "  = note: closure reached {x}; never confined: {y}\n");
}

TEST_F(BlameTest, BlameTraceShowsFiredFinDs) {
  // g(y) = x bounds x once y is known; y is never confined, so the
  // g-dependency is blocked — and the trace says so.
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x | f(x) = y}");
  ASSERT_TRUE(q.ok());
  EmAllowedChecker checker(ctx);
  SafetyResult r = checker.Check(*q);
  ASSERT_FALSE(r.em_allowed);
  Diagnostic d = diag::BuildSafetyBlame(ctx, checker.bound(), r);
  EXPECT_EQ(d.code, "safety.unbounded-free");
  std::string rendered = diag::Render(d, "{x | f(x) = y}");
  // bd({x | f(x) = y}) = { {x}->{y} }: applicable only once x is confined,
  // which never happens — the derivation must name it as blocked.
  EXPECT_NE(rendered.find("blocked {x}->{y}: needs {x}, never confined"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("never confined: {x,y}"), std::string::npos)
      << rendered;
}

TEST_F(BlameTest, FiredStepsAppearInDerivation) {
  // x is confined via R(x); z needs w which is never confined. The trace
  // shows the fired dependency and the blocked one.
  AstContext ctx;
  auto q = ParseQuery(ctx, "{x, z | R(x) and f(w) = z}");
  ASSERT_TRUE(q.ok());
  EmAllowedChecker checker(ctx);
  SafetyResult r = checker.Check(*q);
  ASSERT_FALSE(r.em_allowed);
  EXPECT_TRUE(r.unbounded.Contains(ctx.symbols().Intern("z")));
  EXPECT_TRUE(r.unbounded.Contains(ctx.symbols().Intern("w")));
  EXPECT_FALSE(r.unbounded.Contains(ctx.symbols().Intern("x")));
  Diagnostic d = diag::BuildSafetyBlame(ctx, checker.bound(), r);
  std::string rendered = diag::Render(d, "");
  EXPECT_NE(rendered.find("fired {}->{x}, confining {x}"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("blocked {w}->{z}: needs {w}, never confined"),
            std::string::npos)
      << rendered;
}

// --- lint rules ---

class LintTest : public ::testing::Test {
 protected:
  std::vector<Diagnostic> Lint(std::string_view text,
                               const diag::LintOptions& options = {}) {
    auto f = ParseFormula(ctx_, text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    return diag::LintFormula(ctx_, *f, options);
  }
  bool Has(const std::vector<Diagnostic>& ds, std::string_view code) {
    for (const Diagnostic& d : ds) {
      if (d.code == code) return true;
    }
    return false;
  }
  AstContext ctx_;
};

TEST_F(LintTest, CleanFormulaHasNoFindings) {
  EXPECT_TRUE(Lint("R(x, y) and S(y)").empty());
  EXPECT_TRUE(Lint("exists y (R(x, y) and not S(y))").empty());
}

TEST_F(LintTest, RelationArityConflict) {
  auto ds = Lint("R(x) and R(x, y)");
  ASSERT_TRUE(Has(ds, "lint.rel-arity-conflict"));
  for (const Diagnostic& d : ds) {
    if (d.code == "lint.rel-arity-conflict") {
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_NE(d.message.find("'R'"), std::string::npos);
      EXPECT_TRUE(d.span.has_value());
    }
  }
}

TEST_F(LintTest, FunctionArityConflict) {
  auto ds = Lint("f(x) = y and f(x, y) = z");
  EXPECT_TRUE(Has(ds, "lint.fn-arity-conflict"));
}

TEST_F(LintTest, UnusedQuantifiedVariable) {
  auto ds = Lint("exists y (R(x))");
  ASSERT_TRUE(Has(ds, "lint.unused-quantified-var"));
  EXPECT_FALSE(Has(Lint("exists y (R(y))"), "lint.unused-quantified-var"));
}

TEST_F(LintTest, ShadowedVariable) {
  EXPECT_TRUE(Has(Lint("R(x) and exists x (S(x))"), "lint.shadowed-var"));
  EXPECT_TRUE(
      Has(Lint("exists x (R(x) and forall x (S(x)))"), "lint.shadowed-var"));
  EXPECT_FALSE(Has(Lint("exists x (R(x)) and exists x (S(x))"),
                   "lint.shadowed-var"));
}

TEST_F(LintTest, UnsatisfiableEqualityChain) {
  EXPECT_TRUE(Has(Lint("R(x) and x = 1 and x = 2"), "lint.unsat-equality"));
  EXPECT_TRUE(Has(Lint("R(x) and 1 = 2"), "lint.unsat-equality"));
  EXPECT_FALSE(Has(Lint("R(x) and x = 1 and x = 1"), "lint.unsat-equality"));
  EXPECT_FALSE(Has(Lint("x = 1 or x = 2"), "lint.unsat-equality"));
}

TEST_F(LintTest, CrossProduct) {
  EXPECT_TRUE(Has(Lint("R(x) and S(y)"), "lint.cross-product"));
  EXPECT_FALSE(Has(Lint("R(x) and S(x, y)"), "lint.cross-product"));
  // Constant-only conjuncts are not flagged (no variables to join on).
  EXPECT_FALSE(Has(Lint("R(x) and S(1)"), "lint.cross-product"));
}

TEST_F(LintTest, FunctionDepth) {
  EXPECT_TRUE(
      Has(Lint("f(f(f(f(x)))) = y and R(x)"), "lint.function-depth"));
  EXPECT_FALSE(Has(Lint("f(f(f(x))) = y and R(x)"), "lint.function-depth"));
  diag::LintOptions relaxed;
  relaxed.function_depth_threshold = 0;  // disabled
  EXPECT_FALSE(
      Has(Lint("f(f(f(f(x)))) = y and R(x)", relaxed), "lint.function-depth"));
  diag::LintOptions strict;
  strict.function_depth_threshold = 2;
  EXPECT_TRUE(Has(Lint("f(f(x)) = y and R(x)", strict), "lint.function-depth"));
}

TEST_F(LintTest, FindingsOnAcceptedQueries) {
  // The whole point of the lint pass: warnings fire even when the safety
  // analysis accepts the query.
  Compiler compiler;
  emcalc::QueryAnalysis a = compiler.Analyze("{x, y | R(x) and S(y)}");
  EXPECT_TRUE(a.parsed);
  EXPECT_TRUE(a.safe);
  EXPECT_FALSE(a.HasErrors());
  ASSERT_EQ(diag::CountWarnings(a.diagnostics), 1u);
  EXPECT_EQ(a.diagnostics[0].code, "lint.cross-product");
}

// --- Compiler::Analyze ---

TEST(AnalyzeTest, ParseErrorProducesLocatedDiagnostic) {
  Compiler compiler;
  emcalc::QueryAnalysis a = compiler.Analyze("{x | R(x and}");
  EXPECT_FALSE(a.parsed);
  EXPECT_TRUE(a.HasErrors());
  ASSERT_EQ(a.diagnostics.size(), 1u);
  EXPECT_EQ(a.diagnostics[0].code, "parse.error");
  ASSERT_TRUE(a.diagnostics[0].span.has_value());
  EXPECT_EQ(a.diagnostics[0].span->begin, 9u);
}

TEST(AnalyzeTest, SafeQueryIsSafe) {
  Compiler compiler;
  emcalc::QueryAnalysis a =
      compiler.Analyze("{y | exists x (R(x) and y = succ(x))}");
  EXPECT_TRUE(a.parsed);
  EXPECT_TRUE(a.safe);
  EXPECT_TRUE(a.safety.em_allowed);
  EXPECT_TRUE(a.diagnostics.empty());
}

TEST(AnalyzeTest, AnalyzeSeesThroughViews) {
  Compiler compiler;
  ASSERT_TRUE(compiler.DefineView("Pairs", "{x, y | f(x) = y}").ok());
  // The view alone is not em-allowed, but this use bounds x.
  emcalc::QueryAnalysis good =
      compiler.Analyze("{x, y | R(x) and Pairs(x, y)}");
  EXPECT_TRUE(good.safe) << good.Render();
  // This use does not; the rejection surfaces through the expansion.
  emcalc::QueryAnalysis bad = compiler.Analyze("{x, y | Pairs(x, y)}");
  EXPECT_TRUE(bad.parsed);
  EXPECT_FALSE(bad.safe);
  EXPECT_TRUE(bad.HasErrors());
  EXPECT_EQ(bad.diagnostics[0].code, "safety.unbounded-free");
}

TEST(AnalyzeTest, MalformedQueryReported) {
  Compiler compiler;
  emcalc::QueryAnalysis a = compiler.Analyze("{x | R(y)}");
  EXPECT_TRUE(a.parsed);
  EXPECT_FALSE(a.safe);
  EXPECT_TRUE(a.HasErrors());
  ASSERT_FALSE(a.diagnostics.empty());
  EXPECT_EQ(a.diagnostics[0].code, "query.malformed");
}

TEST(AnalyzeTest, JsonCarriesSpansAndNotes) {
  Compiler compiler;
  emcalc::QueryAnalysis a = compiler.Analyze("{x | not R(x)}");
  auto json = obs::ParseJson(a.ToJson());
  ASSERT_TRUE(json.ok()) << a.ToJson();
  ASSERT_TRUE(json->is_array());
  ASSERT_EQ(json->array.size(), 1u);
  const obs::JsonValue& d = json->array[0];
  EXPECT_EQ(d.StringOr("code", ""), "safety.unbounded-free");
  EXPECT_EQ(d.StringOr("severity", ""), "error");
  const obs::JsonValue* span = d.Find("span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->NumberOr("begin", -1), 5);
  EXPECT_EQ(span->NumberOr("line", -1), 1);
  EXPECT_EQ(span->NumberOr("col", -1), 6);
  const obs::JsonValue* notes = d.Find("notes");
  ASSERT_NE(notes, nullptr);
  EXPECT_TRUE(notes->is_array());
  EXPECT_GE(notes->array.size(), 3u);
}

// --- diagnostics JSON round-trip ---

TEST(DiagnosticJsonTest, RoundTrip) {
  Diagnostic d("safety.unbounded-free", Severity::kError,
               "variables {x} cannot be confined to a finite set");
  d.WithSpan({5, 13});
  d.AddNote("needed: {} -> {x}");
  d.notes.push_back(
      Diagnostic("lint.cross-product", Severity::kWarning, "nested"));
  auto json = obs::ParseJson(diag::ToJson(d));
  ASSERT_TRUE(json.ok());
  Diagnostic back = diag::DiagnosticFromJson(*json);
  EXPECT_EQ(back.code, d.code);
  EXPECT_EQ(back.severity, d.severity);
  EXPECT_EQ(back.message, d.message);
  ASSERT_TRUE(back.span.has_value());
  EXPECT_EQ(*back.span, *d.span);
  ASSERT_EQ(back.notes.size(), 2u);
  EXPECT_EQ(back.notes[0].message, "needed: {} -> {x}");
  EXPECT_EQ(back.notes[1].code, "lint.cross-product");
  EXPECT_EQ(back.notes[1].severity, Severity::kWarning);
}

TEST(DiagnosticJsonTest, RoundTripWithResolvedLineCol) {
  // line/col are derived; the parser must ignore them on the way back in.
  Diagnostic d("parse.error", Severity::kError, "expected ')'");
  d.WithSpan({9, 10});
  auto json = obs::ParseJson(diag::ToJson(d, "{x | R(x and}"));
  ASSERT_TRUE(json.ok());
  Diagnostic back = diag::DiagnosticFromJson(*json);
  ASSERT_TRUE(back.span.has_value());
  EXPECT_EQ(back.span->begin, 9u);
  EXPECT_EQ(back.span->end, 10u);
}

// --- query-log attachment (EMCALC_LINT) ---

class QueryLogLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    log_ = std::make_unique<obs::QueryLog>(&sink_);
    obs::SetQueryLog(log_.get());
    ::setenv("EMCALC_LINT", "1", 1);
  }
  void TearDown() override {
    ::unsetenv("EMCALC_LINT");
    obs::SetQueryLog(nullptr);
  }

  std::vector<obs::QueryLogRecord> Records() {
    std::vector<obs::QueryLogRecord> out;
    std::istringstream in(sink_.str());
    std::string line;
    while (std::getline(in, line)) {
      auto r = obs::ParseQueryLogRecord(line);
      EXPECT_TRUE(r.ok()) << line;
      if (r.ok()) out.push_back(*std::move(r));
    }
    return out;
  }

  std::ostringstream sink_;
  std::unique_ptr<obs::QueryLog> log_;
};

TEST_F(QueryLogLintTest, LintWarningsAttachToCompileRecords) {
  Compiler compiler;
  auto q = compiler.Compile("{x, y | R(x) and S(y)}");
  ASSERT_TRUE(q.ok());
  auto records = Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event, "compile");
  EXPECT_TRUE(records[0].ok);
  ASSERT_EQ(records[0].diagnostics.size(), 1u);
  EXPECT_EQ(records[0].diagnostics[0].code, "lint.cross-product");
  EXPECT_EQ(records[0].diagnostics[0].severity, Severity::kWarning);
}

TEST_F(QueryLogLintTest, SafetyBlameAttachesOnRejection) {
  Compiler compiler;
  auto q = compiler.Compile("{x | not R(x)}");
  ASSERT_FALSE(q.ok());
  auto records = Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_FALSE(records[0].em_allowed);
  ASSERT_FALSE(records[0].diagnostics.empty());
  const Diagnostic& blame = records[0].diagnostics[0];
  EXPECT_EQ(blame.code, "safety.unbounded-free");
  ASSERT_TRUE(blame.span.has_value());
  EXPECT_EQ(blame.span->begin, 5u);
  EXPECT_FALSE(blame.notes.empty());
}

TEST_F(QueryLogLintTest, NoDiagnosticsWithoutOptIn) {
  ::unsetenv("EMCALC_LINT");
  Compiler compiler;
  auto q = compiler.Compile("{x, y | R(x) and S(y)}");
  ASSERT_TRUE(q.ok());
  auto records = Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].diagnostics.empty());
}

// --- property: rejections blame genuinely unbounded variables ---

class DiagPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiagPropertyTest, RejectionsNameUnconfinedVariables) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam());
  EmAllowedChecker checker(ctx);
  int rejected = 0;
  for (int i = 0; i < 60; ++i) {
    Query q = gen.Next();
    SafetyResult r = checker.Check(q);
    if (r.em_allowed) continue;
    ++rejected;
    SCOPED_TRACE(QueryToString(ctx, q));
    // Every rejection names at least one variable...
    EXPECT_EQ(r.violation == SafetyViolation::kNone, false);
    ASSERT_FALSE(r.unbounded.empty());
    ASSERT_NE(r.checked, nullptr);
    ASSERT_NE(r.blamed, nullptr);
    EXPECT_TRUE(r.unbounded.IsSubsetOf(r.blame_targets));
    // ...that is genuinely not in the FinD closure of the context —
    // cross-validated with the naive fixpoint closure, independent of the
    // linear-counter algorithm the checker itself uses.
    const FinDSet& bd = checker.bound().Bound(r.checked);
    SymbolSet closure = bd.Closure(r.blame_context);
    for (Symbol v : r.unbounded) {
      EXPECT_FALSE(closure.Contains(v))
          << "blamed variable " << ctx.symbols().Name(v)
          << " is actually bounded";
    }
    // The blame trace can always be built and renders the variables.
    diag::Diagnostic d = diag::BuildSafetyBlame(ctx, checker.bound(), r);
    EXPECT_FALSE(d.message.empty());
    EXPECT_FALSE(d.notes.empty());
  }
  EXPECT_GT(rejected, 0) << "generator produced no rejected queries";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace emcalc
