// Exhaustive soundness sweep: enumerate EVERY formula up to a small AST
// size over a fixed signature (R/1, S/2, f/1, variables x and y, constant
// 0) and verify the chain
//
//     em-allowed accepted  ==>  translation succeeds
//                          ==>  plan answer == reference answer
//                          ==>  answer invariant under junk domain values
//
// on fixed instances. Unlike the random property tests this covers the
// complete space of small formulas, including every pathological corner
// (vacuous quantifiers, trivial equalities, double negations, ...).
#include <gtest/gtest.h>

#include <vector>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/builder.h"
#include "src/calculus/printer.h"
#include "src/eval/calculus_eval.h"
#include "src/safety/em_allowed.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

class Enumerator {
 public:
  explicit Enumerator(AstContext& ctx) : ctx_(ctx) {
    x_ = ctx.symbols().Intern("x");
    y_ = ctx.symbols().Intern("y");
    r_ = ctx.symbols().Intern("R");
    s_ = ctx.symbols().Intern("S");
    const Term* x = ctx.MakeVar(x_);
    const Term* y = ctx.MakeVar(y_);
    const Term* zero = ctx.MakeConst(Value::Int(0));
    std::vector<const Term*> fargs = {x};
    const Term* fx = ctx.MakeApply(ctx.symbols().Intern("f"), fargs);
    terms_ = {x, y, zero, fx};
  }

  // All formulas with exactly `size` nodes (kAnd/kOr counted as one node
  // plus their children's sizes; built strictly binary here).
  const std::vector<const Formula*>& OfSize(int size) {
    while (static_cast<int>(by_size_.size()) <= size) {
      int n = static_cast<int>(by_size_.size());
      std::vector<const Formula*> out;
      if (n == 1) {
        // Atoms.
        for (const Term* t : terms_) {
          std::vector<const Term*> args = {t};
          out.push_back(ctx_.MakeRel(r_, args));
        }
        for (const Term* a : terms_) {
          for (const Term* b : terms_) {
            std::vector<const Term*> args = {a, b};
            out.push_back(ctx_.MakeRel(s_, args));
            out.push_back(ctx_.MakeEq(a, b));
            out.push_back(ctx_.MakeNeq(a, b));
          }
        }
      } else if (n >= 2) {
        for (const Formula* c : by_size_[n - 1]) {
          out.push_back(ctx_.MakeNot(c));
          // Skip quantifiers over variables not free in the body: they are
          // semantically vacuous and already covered by the body itself.
          SymbolSet free = FreeVars(c);
          if (free.Contains(x_)) {
            out.push_back(ctx_.MakeExists(std::vector<Symbol>{x_}, c));
          }
          if (free.Contains(y_)) {
            out.push_back(ctx_.MakeExists(std::vector<Symbol>{y_}, c));
          }
        }
        for (int left = 1; left <= n - 2; ++left) {
          int right = n - 1 - left;
          if (right < 1) continue;
          for (const Formula* a : by_size_[left]) {
            for (const Formula* b : by_size_[right]) {
              std::vector<const Formula*> pair = {a, b};
              out.push_back(ctx_.MakeAnd(pair));
              out.push_back(ctx_.MakeOr(pair));
            }
          }
        }
      }
      by_size_.push_back(std::move(out));
    }
    return by_size_[size];
  }

 private:
  AstContext& ctx_;
  Symbol x_, y_, r_, s_;
  std::vector<const Term*> terms_;
  std::vector<std::vector<const Formula*>> by_size_;
};

FunctionRegistry SweepFunctions() {
  FunctionRegistry reg;
  reg.Register("f", 1, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 9;
    return Value::Int((n + 1) % 4);
  });
  return reg;
}

Database SweepInstance(int variant) {
  Database db;
  if (variant == 0) {
    (void)db.Insert("R", {Value::Int(0)});
    (void)db.Insert("R", {Value::Int(2)});
    (void)db.Insert("S", {Value::Int(0), Value::Int(1)});
    (void)db.Insert("S", {Value::Int(2), Value::Int(2)});
  } else {
    (void)db.AddRelation("R", 1);  // empty R
    (void)db.Insert("S", {Value::Int(1), Value::Int(3)});
    (void)db.Insert("S", {Value::Int(3), Value::Int(1)});
  }
  return db;
}

class ExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveTest, AcceptedFormulasTranslateAndMatchOracle) {
  AstContext ctx;
  Enumerator en(ctx);
  FunctionRegistry registry = SweepFunctions();
  int size = GetParam();
  int total = 0;
  int accepted = 0;
  for (const Formula* f : en.OfSize(size)) {
    ++total;
    SymbolSet free = FreeVars(f);
    Query q{{free.begin(), free.end()}, f};
    EmAllowedChecker checker(ctx);
    if (!checker.Check(q).em_allowed) continue;
    ++accepted;
    auto t = TranslateQuery(ctx, q);
    ASSERT_TRUE(t.ok()) << "accepted but untranslatable: "
                        << QueryToString(ctx, q) << "\n"
                        << t.status().ToString();
    for (int variant = 0; variant < 2; ++variant) {
      Database db = SweepInstance(variant);
      auto plan_answer = EvaluateAlgebra(ctx, t->plan, db, registry);
      ASSERT_TRUE(plan_answer.ok()) << QueryToString(ctx, q);
      auto oracle = EvaluateCalculus(ctx, q, db, registry);
      ASSERT_TRUE(oracle.ok()) << QueryToString(ctx, q);
      ASSERT_EQ(*plan_answer, *oracle)
          << QueryToString(ctx, q)
          << "\nplan: " << AlgExprToString(ctx, t->plan) << "\ninstance "
          << variant;
      // Domain independence: junk values must not change the answer.
      CalculusEvalOptions junk;
      junk.extra_domain = {Value::Int(77), Value::Str("junk")};
      auto bigger = EvaluateCalculus(ctx, q, db, registry, junk);
      ASSERT_TRUE(bigger.ok());
      ASSERT_EQ(*oracle, *bigger)
          << "accepted query is domain-dependent: " << QueryToString(ctx, q);
    }
  }
  std::printf("size %d: %d formulas, %d em-allowed\n", size, total, accepted);
  EXPECT_GT(total, 0);
  EXPECT_GT(accepted, 0);
}

// Sizes 1-3 are fully exhaustive; size 4 covers every unary wrap of size-3
// and every binary split (1,2)/(2,1).
INSTANTIATE_TEST_SUITE_P(Sizes, ExhaustiveTest, ::testing::Values(1, 2, 3));

TEST(ExhaustiveSampledTest, SizeFourSample) {
  // Size 4 has ~10^5-10^6 formulas; check a deterministic stride sample.
  AstContext ctx;
  Enumerator en(ctx);
  FunctionRegistry registry = SweepFunctions();
  const auto& formulas = en.OfSize(4);
  ASSERT_GT(formulas.size(), 1000u);
  int accepted = 0;
  size_t stride = formulas.size() / 400 + 1;
  for (size_t i = 0; i < formulas.size(); i += stride) {
    const Formula* f = formulas[i];
    SymbolSet free = FreeVars(f);
    Query q{{free.begin(), free.end()}, f};
    if (!CheckEmAllowed(ctx, q).em_allowed) continue;
    ++accepted;
    auto t = TranslateQuery(ctx, q);
    ASSERT_TRUE(t.ok()) << QueryToString(ctx, q);
    Database db = SweepInstance(0);
    auto plan_answer = EvaluateAlgebra(ctx, t->plan, db, registry);
    auto oracle = EvaluateCalculus(ctx, q, db, registry);
    ASSERT_TRUE(plan_answer.ok() && oracle.ok());
    ASSERT_EQ(*plan_answer, *oracle) << QueryToString(ctx, q);
  }
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace emcalc
