// Tests for relations, databases, the function registry/builtins, active
// domains, and term closures.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <utility>

#include "src/calculus/parser.h"
#include "src/storage/adom.h"
#include "src/storage/database.h"
#include "src/storage/interpretation.h"
#include "src/storage/relation.h"

namespace emcalc {
namespace {

TEST(RelationTest, SetSemantics) {
  Relation r(2);
  r.Insert({Value::Int(1), Value::Int(2)});
  r.Insert({Value::Int(1), Value::Int(2)});
  r.Insert({Value::Int(0), Value::Int(9)});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(r.Contains({Value::Int(2), Value::Int(1)}));
}

TEST(RelationTest, TuplesAreSorted) {
  Relation r(1);
  r.Insert({Value::Int(5)});
  r.Insert({Value::Int(1)});
  r.Insert({Value::Str("a")});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.row(0)[0], Value::Int(1));
  EXPECT_EQ(r.row(2)[0], Value::Str("a"));
}

TEST(RelationTest, UnionAndDifference) {
  Relation a(1), b(1);
  a.Insert({Value::Int(1)});
  a.Insert({Value::Int(2)});
  b.Insert({Value::Int(2)});
  b.Insert({Value::Int(3)});
  Relation u = a.UnionWith(b);
  EXPECT_EQ(u.size(), 3u);
  Relation d = a.DifferenceWith(b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.Contains({Value::Int(1)}));
}

TEST(RelationTest, ZeroArity) {
  Relation t(0);
  EXPECT_TRUE(t.empty());
  t.Insert({});
  t.Insert({});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Contains({}));
}

TEST(RelationTest, TryInsertRejectsArityMismatch) {
  Relation r(2);
  EXPECT_TRUE(r.TryInsert({Value::Int(1), Value::Int(2)}).ok());
  Status s = r.TryInsert({Value::Int(1)});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  Status s3 = r.TryInsert({Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_FALSE(s3.ok());
  // Failed inserts leave the relation unchanged.
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, ReservePreservesContents) {
  Relation r(1);
  r.Insert({Value::Int(1)});
  r.Reserve(1000);
  r.Insert({Value::Int(2)});
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, MoveUnionMatchesCopyUnion) {
  Relation a(1), b(1);
  for (int i = 0; i < 6; ++i) a.Insert({Value::Int(i)});
  for (int i = 4; i < 10; ++i) b.Insert({Value::Int(i)});
  Relation expected = a.UnionWith(b);
  Relation a2 = a;
  uint64_t before = Relation::TuplesCopied();
  Relation moved = std::move(a2).UnionWith(b);
  // Only the right side's tuples are copied into the reused storage.
  EXPECT_EQ(Relation::TuplesCopied() - before, b.size());
  EXPECT_EQ(moved, expected);
}

TEST(RelationTest, MoveDifferenceMatchesCopyDifferenceWithoutCopies) {
  Relation a(1), b(1);
  for (int i = 0; i < 8; ++i) a.Insert({Value::Int(i)});
  for (int i = 0; i < 8; i += 2) b.Insert({Value::Int(i)});
  Relation expected = a.DifferenceWith(b);
  Relation a2 = a;
  uint64_t before = Relation::TuplesCopied();
  Relation moved = std::move(a2).DifferenceWith(b);
  EXPECT_EQ(Relation::TuplesCopied(), before);  // filtered in place
  EXPECT_EQ(moved, expected);
}

TEST(RelationTest, CopyInstrumentationCountsCopies) {
  Relation r(1);
  r.Insert({Value::Int(1)});
  r.Insert({Value::Int(2)});
  EXPECT_EQ(r.size(), 2u);  // normalize before sampling
  uint64_t copies_before = Relation::CopiesMade();
  uint64_t tuples_before = Relation::TuplesCopied();
  Relation c = r;
  EXPECT_EQ(Relation::CopiesMade() - copies_before, 1u);
  EXPECT_EQ(Relation::TuplesCopied() - tuples_before, 2u);
  Relation m = std::move(c);  // moves are free
  EXPECT_EQ(Relation::CopiesMade() - copies_before, 1u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(RelationTest, EqualityIgnoresInsertionOrder) {
  Relation a(1), b(1);
  a.Insert({Value::Int(1)});
  a.Insert({Value::Int(2)});
  b.Insert({Value::Int(2)});
  b.Insert({Value::Int(1)});
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// FlatRelation vs LegacyRelation: the flat, arity-strided representation
// must be observably identical to the original vector-of-tuples one. Random
// inputs (mixed ints/strings, duplicates, both operand orders, copy and
// move variants) are pushed through both and every observable compared.

Tuple RandomTuple(std::mt19937& rng, int arity) {
  std::uniform_int_distribution<int> v(0, 9);
  std::uniform_int_distribution<int> kind(0, 3);
  Tuple t;
  t.reserve(static_cast<size_t>(arity));
  for (int i = 0; i < arity; ++i) {
    if (kind(rng) == 0) {
      t.push_back(Value::Str(std::string(1, static_cast<char>('a' + v(rng)))));
    } else {
      t.push_back(Value::Int(v(rng)));
    }
  }
  return t;
}

TEST(FlatVsLegacyTest, RandomInsertsAgree) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 100; ++trial) {
    int arity = trial % 4;  // includes arity 0
    FlatRelation flat(arity);
    LegacyRelation legacy(arity);
    int n = trial % 23;
    for (int i = 0; i < n; ++i) {
      Tuple t = RandomTuple(rng, arity);
      flat.Insert(t);
      legacy.Insert(t);
    }
    ASSERT_EQ(flat.size(), legacy.size()) << "trial " << trial;
    ASSERT_EQ(flat.ToString(), legacy.ToString()) << "trial " << trial;
    // Sorted order and per-row contents agree.
    size_t row = 0;
    for (const Tuple& t : legacy.tuples()) {
      ASSERT_EQ(flat.row(row).ToTuple(), t) << "trial " << trial;
      ++row;
    }
    // Membership agrees on present tuples and on random probes.
    for (const Tuple& t : legacy.tuples()) {
      EXPECT_TRUE(flat.Contains(t));
    }
    for (int i = 0; i < 10; ++i) {
      Tuple probe = RandomTuple(rng, arity);
      EXPECT_EQ(flat.Contains(probe), legacy.Contains(probe))
          << "trial " << trial;
    }
  }
}

TEST(FlatVsLegacyTest, RandomSetOperationsAgree) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    int arity = trial % 4;
    FlatRelation fa(arity), fb(arity);
    LegacyRelation la(arity), lb(arity);
    int na = trial % 17;
    int nb = (trial * 7 + 3) % 17;
    for (int i = 0; i < na; ++i) {
      Tuple t = RandomTuple(rng, arity);
      fa.Insert(t);
      la.Insert(t);
    }
    for (int i = 0; i < nb; ++i) {
      Tuple t = RandomTuple(rng, arity);
      fb.Insert(t);
      lb.Insert(t);
    }
    EXPECT_EQ(fa.UnionWith(fb).ToString(), la.UnionWith(lb).ToString())
        << "trial " << trial;
    EXPECT_EQ(fb.UnionWith(fa).ToString(), lb.UnionWith(la).ToString())
        << "trial " << trial;
    EXPECT_EQ(fa.DifferenceWith(fb).ToString(),
              la.DifferenceWith(lb).ToString())
        << "trial " << trial;
    EXPECT_EQ(fb.DifferenceWith(fa).ToString(),
              lb.DifferenceWith(la).ToString())
        << "trial " << trial;
    // Move-aware variants produce the same sets as the copying ones.
    FlatRelation fa_copy1 = fa;
    EXPECT_EQ(std::move(fa_copy1).UnionWith(fb), fa.UnionWith(fb))
        << "trial " << trial;
    FlatRelation fa_copy2 = fa;
    EXPECT_EQ(std::move(fa_copy2).DifferenceWith(fb), fa.DifferenceWith(fb))
        << "trial " << trial;
    // Equality is set equality on both representations.
    EXPECT_EQ(fa == fb, la == lb) << "trial " << trial;
  }
}

TEST(FlatRelationTest, AppendAllConcatenatesAndRenormalizes) {
  FlatRelation a(1), b(1);
  a.Insert({Value::Int(3)});
  a.Insert({Value::Int(1)});
  b.Insert({Value::Int(2)});
  b.Insert({Value::Int(1)});
  a.AppendAll(b);
  EXPECT_EQ(a.size(), 3u);  // {1, 2, 3}
  EXPECT_EQ(a.row(0)[0], Value::Int(1));
  EXPECT_EQ(a.row(2)[0], Value::Int(3));
}

TEST(DatabaseTest, CatalogOperations) {
  Database db;
  EXPECT_TRUE(db.AddRelation("R", 2).ok());
  EXPECT_TRUE(db.AddRelation("R", 2).ok());   // idempotent
  EXPECT_FALSE(db.AddRelation("R", 3).ok());  // arity conflict
  EXPECT_TRUE(db.Insert("R", {Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(db.Insert("R", {Value::Int(1)}).ok());
  EXPECT_TRUE(db.Insert("S", {Value::Int(7)}).ok());  // auto-create
  EXPECT_NE(db.Find("S"), nullptr);
  EXPECT_EQ(db.Find("T"), nullptr);
  EXPECT_FALSE(db.Get("T").ok());
  EXPECT_EQ(db.TotalTuples(), 2u);
}

TEST(FunctionRegistryTest, RegisterAndLookup) {
  FunctionRegistry reg;
  reg.Register("inc", 1, [](std::span<const Value> a) {
    return Value::Int(a[0].AsInt() + 1);
  });
  ASSERT_NE(reg.Find("inc"), nullptr);
  EXPECT_EQ(reg.Find("inc")->arity, 1);
  EXPECT_FALSE(reg.Get("inc", 2).ok());
  EXPECT_FALSE(reg.Get("dec", 1).ok());
  auto f = reg.Get("inc", 1);
  ASSERT_TRUE(f.ok());
  Value in[] = {Value::Int(4)};
  EXPECT_EQ((*f)->fn(in), Value::Int(5));
}

TEST(BuiltinFunctionsTest, ArithmeticAndStrings) {
  FunctionRegistry reg = BuiltinFunctions();
  auto call1 = [&](const char* name, Value a) {
    Value args[] = {a};
    return reg.Find(name)->fn(args);
  };
  auto call2 = [&](const char* name, Value a, Value b) {
    Value args[] = {a, b};
    return reg.Find(name)->fn(args);
  };
  EXPECT_EQ(call1("succ", Value::Int(4)), Value::Int(5));
  EXPECT_EQ(call1("pred", Value::Int(4)), Value::Int(3));
  EXPECT_EQ(call1("abs", Value::Int(-4)), Value::Int(4));
  EXPECT_EQ(call2("plus", Value::Int(2), Value::Int(3)), Value::Int(5));
  EXPECT_EQ(call2("concat", Value::Str("a"), Value::Str("b")),
            Value::Str("ab"));
  EXPECT_EQ(call2("concat", Value::Int(1), Value::Str("b")),
            Value::Str("1b"));
  EXPECT_EQ(call1("len", Value::Str("abc")), Value::Int(3));
  EXPECT_EQ(call1("first_char", Value::Str("xyz")), Value::Str("x"));
}

TEST(BuiltinFunctionsTest, TotalOnMixedDomain) {
  // Every builtin must accept any mix of ints and strings (totality is the
  // paper's standing assumption on scalar functions).
  FunctionRegistry reg = BuiltinFunctions();
  Value samples[] = {Value::Int(-3), Value::Int(0), Value::Str(""),
                     Value::Str("abc")};
  for (const auto& [name, fn] : reg.functions()) {
    if (fn.arity == 1) {
      for (const Value& a : samples) {
        Value args[] = {a};
        (void)fn.fn(args);  // must not crash
      }
    } else if (fn.arity == 2) {
      for (const Value& a : samples) {
        for (const Value& b : samples) {
          Value args[] = {a, b};
          (void)fn.fn(args);
        }
      }
    }
  }
}

TEST(AdomTest, ActiveDomainCollectsAllColumns) {
  Database db;
  EXPECT_TRUE(db.Insert("R", {Value::Int(1), Value::Str("a")}).ok());
  EXPECT_TRUE(db.Insert("S", {Value::Int(2)}).ok());
  ValueSet adom = ActiveDomain(db);
  EXPECT_EQ(adom.size(), 3u);
  EXPECT_TRUE(std::binary_search(adom.begin(), adom.end(), Value::Str("a")));
}

TEST(AdomTest, QueryConstantsJoinActiveDomain) {
  AstContext ctx;
  auto f = ParseFormula(ctx, "R(x) and x != 99");
  ASSERT_TRUE(f.ok());
  Database db;
  EXPECT_TRUE(db.Insert("R", {Value::Int(1)}).ok());
  ValueSet adom = ActiveDomain(ctx, *f, db);
  EXPECT_EQ(adom.size(), 2u);
  EXPECT_TRUE(std::binary_search(adom.begin(), adom.end(), Value::Int(99)));
}

TEST(TermClosureTest, LevelsGrowMonotonically) {
  FunctionRegistry reg = BuiltinFunctions();
  ValueSet base = {Value::Int(0)};
  std::vector<std::pair<std::string, int>> fns = {{"succ", 1}};
  auto l0 = TermClosure(base, fns, reg, 0, 1000);
  auto l1 = TermClosure(base, fns, reg, 1, 1000);
  auto l3 = TermClosure(base, fns, reg, 3, 1000);
  ASSERT_TRUE(l0.ok() && l1.ok() && l3.ok());
  EXPECT_EQ(l0->size(), 1u);
  EXPECT_EQ(l1->size(), 2u);  // {0, 1}
  EXPECT_EQ(l3->size(), 4u);  // {0, 1, 2, 3}
  EXPECT_TRUE(std::includes(l3->begin(), l3->end(), l1->begin(), l1->end()));
}

TEST(TermClosureTest, BinaryFunctionsCloseOverPairs) {
  FunctionRegistry reg = BuiltinFunctions();
  ValueSet base = {Value::Int(1), Value::Int(2)};
  std::vector<std::pair<std::string, int>> fns = {{"plus", 2}};
  auto l1 = TermClosure(base, fns, reg, 1, 1000);
  ASSERT_TRUE(l1.ok());
  // 1+1=2, 1+2=3, 2+2=4 -> {1,2,3,4}
  EXPECT_EQ(l1->size(), 4u);
}

TEST(TermClosureTest, FixpointStops) {
  FunctionRegistry reg = BuiltinFunctions();
  ValueSet base = {Value::Int(5)};
  std::vector<std::pair<std::string, int>> fns = {{"abs", 1}};
  auto l5 = TermClosure(base, fns, reg, 5, 1000);
  ASSERT_TRUE(l5.ok());
  EXPECT_EQ(l5->size(), 1u);  // abs(5) = 5: closed immediately
}

TEST(TermClosureTest, BudgetEnforced) {
  FunctionRegistry reg = BuiltinFunctions();
  ValueSet base = {Value::Int(0)};
  std::vector<std::pair<std::string, int>> fns = {{"succ", 1}};
  auto r = TermClosure(base, fns, reg, 100, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(TermClosureTest, UnknownFunctionFails) {
  FunctionRegistry reg;
  auto r = TermClosure({Value::Int(0)}, {{"mystery", 1}}, reg, 1, 10);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace emcalc
