// Integration tests for the four-step translation pipeline: ENF, RANF,
// algebra generation, plan equivalence with the reference evaluator, the
// T10 ablation, and the active-domain baseline translator.
#include <gtest/gtest.h>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/eval/calculus_eval.h"
#include "src/translate/active_domain.h"
#include "src/translate/enf.h"
#include "src/translate/pipeline.h"
#include "src/translate/ranf.h"

namespace emcalc {
namespace {

class TranslateTest : public ::testing::Test {
 protected:
  TranslateTest() : registry_(BuiltinFunctions()) {
    for (int i = 1; i <= 4; ++i) {
      EXPECT_TRUE(db_.Insert("R", {Value::Int(i)}).ok());
    }
    EXPECT_TRUE(db_.Insert("S", {Value::Int(2)}).ok());
    EXPECT_TRUE(db_.Insert("S", {Value::Int(5)}).ok());
    EXPECT_TRUE(db_.Insert("T", {Value::Int(3), Value::Int(4)}).ok());
    EXPECT_TRUE(db_.Insert("T", {Value::Int(4), Value::Int(5)}).ok());
    EXPECT_TRUE(db_.Insert("B", {Value::Int(1)}).ok());
    EXPECT_TRUE(db_.Insert("B", {Value::Int(2)}).ok());
    EXPECT_TRUE(db_.Insert("T3", {Value::Int(1), Value::Int(2),
                                  Value::Int(3)})
                    .ok());
    EXPECT_TRUE(db_.Insert("T3", {Value::Int(2), Value::Int(1),
                                  Value::Int(5)})
                    .ok());
    EXPECT_TRUE(db_.Insert("P", {Value::Int(1), Value::Int(2)}).ok());
    EXPECT_TRUE(db_.Insert("Q2", {Value::Int(2), Value::Int(3)}).ok());
  }

  Query Parse(std::string_view text) {
    auto q = ParseQuery(ctx_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.ok() ? *q : Query{};
  }

  // Translates and checks the plan's answer against the reference
  // evaluator.
  void ExpectMatchesOracle(std::string_view text,
                           TranslateOptions options = {}) {
    Query q = Parse(text);
    auto t = TranslateQuery(ctx_, q, options);
    ASSERT_TRUE(t.ok()) << text << " : " << t.status().ToString();
    auto plan_answer = EvaluateAlgebra(ctx_, t->plan, db_, registry_);
    ASSERT_TRUE(plan_answer.ok()) << plan_answer.status().ToString();
    auto oracle = EvaluateCalculus(ctx_, q, db_, registry_);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    EXPECT_EQ(*plan_answer, *oracle)
        << text << "\nplan: " << AlgExprToString(ctx_, t->plan)
        << "\nplan answer:\n" << plan_answer->ToString()
        << "oracle:\n" << oracle->ToString();
    // The unoptimized plan must agree too.
    auto raw_answer = EvaluateAlgebra(ctx_, t->raw_plan, db_, registry_);
    ASSERT_TRUE(raw_answer.ok());
    EXPECT_EQ(*raw_answer, *oracle) << text << " (raw plan)";
  }

  AstContext ctx_;
  Database db_;
  FunctionRegistry registry_;
};

// Counts surviving forall nodes (ENF must remove them all).
int QuantifierCountForall(const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kForall:
      return 1 + QuantifierCountForall(f->child());
    case FormulaKind::kNot:
    case FormulaKind::kExists:
      return QuantifierCountForall(f->child());
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      int n = 0;
      for (const Formula* c : f->children()) {
        n += QuantifierCountForall(c);
      }
      return n;
    }
    default:
      return 0;
  }
}

// --- ENF ---

TEST_F(TranslateTest, EnfEliminatesForall) {
  auto f = ParseFormula(ctx_, "R(x) and forall y (not T(x, y) or S(y))");
  ASSERT_TRUE(f.ok());
  const Formula* enf = ToEnf(ctx_, *f);
  EXPECT_TRUE(IsEnf(enf)) << FormulaToString(ctx_, enf);
  EXPECT_EQ(QuantifierCountForall(enf), 0);
}

TEST_F(TranslateTest, EnfPushesNegationOverOr) {
  auto f = ParseFormula(ctx_, "R(x) and not (S(x) or T(x, x))");
  ASSERT_TRUE(f.ok());
  const Formula* enf = ToEnf(ctx_, *f);
  EXPECT_EQ(FormulaToString(ctx_, enf),
            "R(x) and not S(x) and not T(x, x)");
}

TEST_F(TranslateTest, EnfKeepsNegatedConjunctionWithoutBoundingGain) {
  auto f = ParseFormula(ctx_, "R(x) and not (S(x) and B(x))");
  ASSERT_TRUE(f.ok());
  const Formula* enf = ToEnf(ctx_, *f);
  // No bounding information inside: keep for the difference operator.
  EXPECT_EQ(FormulaToString(ctx_, enf), "R(x) and not (S(x) and B(x))");
}

TEST_F(TranslateTest, EnfT10PushesWhenBoundingAppears) {
  auto f = ParseFormula(ctx_, "B(x) and not (succ(x) != y and pred(x) != y)");
  ASSERT_TRUE(f.ok());
  const Formula* with_t10 = ToEnf(ctx_, *f);
  EXPECT_EQ(FormulaToString(ctx_, with_t10),
            "B(x) and (succ(x) = y or pred(x) = y)");
  EnfOptions no_t10;
  no_t10.enable_t10 = false;
  const Formula* without = ToEnf(ctx_, *f, no_t10);
  EXPECT_EQ(FormulaToString(ctx_, without),
            "B(x) and not (succ(x) != y and pred(x) != y)");
}

// --- RANF ---

TEST_F(TranslateTest, RanfOrdersConjunctions) {
  // The negation must move after the atoms that bound its variables.
  auto f = ParseFormula(ctx_, "not S(y) and succ(x) = y and R(x)");
  ASSERT_TRUE(f.ok());
  auto ranf = ToRanf(ctx_, ToEnf(ctx_, *f), SymbolSet{});
  ASSERT_TRUE(ranf.ok()) << ranf.status().ToString();
  EXPECT_TRUE(IsRanf(*ranf, SymbolSet{}));
  ASSERT_EQ((*ranf)->kind(), FormulaKind::kAnd);
  EXPECT_EQ(FormulaToString(ctx_, (*ranf)->children()[0]), "R(x)");
  EXPECT_EQ(FormulaToString(ctx_, (*ranf)->children()[2]), "not S(y)");
}

TEST_F(TranslateTest, RanfRejectsUnboundedNegation) {
  auto f = ParseFormula(ctx_, "R(x) and not S(y)");
  ASSERT_TRUE(f.ok());
  auto ranf = ToRanf(ctx_, ToEnf(ctx_, *f), SymbolSet{});
  EXPECT_FALSE(ranf.ok());
  EXPECT_EQ(ranf.status().code(), StatusCode::kNotSafe);
}

TEST_F(TranslateTest, RanfContextEnablesAtoms) {
  auto f = ParseFormula(ctx_, "succ(x) = y");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(IsRanf(*f, SymbolSet{}));
  EXPECT_TRUE(IsRanf(*f, SymbolSet{ctx_.symbols().Intern("x")}));
}

TEST_F(TranslateTest, RanfConstructiveAtomConditionT16) {
  // R-atom with a function argument needs its variables bound first.
  auto f = ParseFormula(ctx_, "T(succ(x), y) and R(x)");
  ASSERT_TRUE(f.ok());
  auto ranf = ToRanf(ctx_, ToEnf(ctx_, *f), SymbolSet{});
  ASSERT_TRUE(ranf.ok()) << ranf.status().ToString();
  ASSERT_EQ((*ranf)->kind(), FormulaKind::kAnd);
  EXPECT_EQ(FormulaToString(ctx_, (*ranf)->children()[0]), "R(x)");
}

// --- end-to-end equivalence on a corpus ---

class PipelineCase : public TranslateTest,
                     public ::testing::WithParamInterface<const char*> {};

TEST_P(PipelineCase, PlanMatchesOracle) { ExpectMatchesOracle(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    Corpus, PipelineCase,
    ::testing::Values(
        "{x | R(x)}",
        "{x | R(x) and not S(x)}",
        "{x | R(x) and x != 2}",
        "{x, y | R(x) and succ(x) = y}",
        "{y | exists x (R(x) and y = double(succ(x)))}",
        "{x | R(x) and exists y (succ(x) = y and not R(y))}",
        "{x, y | (R(x) and succ(x) = y) or (S(y) and double(y) = x)}",
        "{x, y | T(x, y) and not Q2(x, y)}",
        "{x | R(x) and exists y (T(x, y))}",
        "{x | R(x) and not exists y (T(x, y))}",
        "{x | R(x) and forall y (not T(x, y) or S(y))}",
        "{x | R(x) and (S(x) or B(x))}",
        "{x, y | R(x) and R(y) and x != y and not T(x, y)}",
        "{x | R(x) and succ(x) = 3}",
        "{x | R(x) and 3 = succ(x)}",
        "{x, y | B(x) and T(succ(x), y)}",
        "{x, y | R(x) and y = 7}",
        "{ | exists x (R(x) and S(x))}",
        "{x | R(x) and not (S(x) and B(x))}",
        "{x, y | R(x) and succ(x) = y and not S(y)}",
        "{x, y, z | R(x) and succ(x) = y and succ(y) = z and not R(z)}",
        "{x | S(x) or B(x)}",
        "{x | R(x) and (x = 1 or x = 2)}",
        "{x, y | B(x) and not (((succ(x) != y and pred(x) != y) or "
        "T(x, y)) and ((double(x) != y and plus(x, 2) != y) or P(x, y)))}",
        // T16 in full generality: the atom binds z but its third argument
        // needs y, which is bound from z by a sibling — orderable only
        // after flattening the function argument into a fresh existential.
        "{x, y, z | B(x) and T3(z, x, plus(z, y)) and succ(z) = y}",
        "{x, z | B(x) and T3(z, x, succ(z))}"));

TEST_F(TranslateTest, NotSafeQueriesRejectedWithReason) {
  auto t = TranslateQuery(ctx_, Parse("{x | not R(x)}"));
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotSafe);
  EXPECT_NE(t.status().message().find("not em-allowed"), std::string::npos);
}

TEST_F(TranslateTest, IllFormedQueriesRejected) {
  auto t = TranslateQuery(ctx_, Parse("{x | R(x) and R(x, x)}"));
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TranslateTest, T10AblationFailsOnQ4) {
  // q4 (with bounding atom B): translatable with T10, untranslatable with
  // GT91's transformation set (experiment E6 / paper Section 7).
  const char* q4 =
      "{x, y | B(x) and not (((succ(x) != y and pred(x) != y) or "
      "T(x, y)) and ((double(x) != y and plus(x, 2) != y) or P(x, y)))}";
  TranslateOptions with_t10;
  EXPECT_TRUE(TranslateQuery(ctx_, Parse(q4), with_t10).ok());
  TranslateOptions without;
  without.enable_t10 = false;
  auto t = TranslateQuery(ctx_, Parse(q4), without);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotSafe);
}

TEST_F(TranslateTest, T10AblationDoesNotAffectGT91Queries) {
  TranslateOptions without;
  without.enable_t10 = false;
  const char* corpus[] = {
      "{x | R(x) and not S(x)}",
      "{x, y | T(x, y) and not Q2(x, y)}",
      "{x | R(x) and not (S(x) and B(x))}",
  };
  for (const char* text : corpus) {
    EXPECT_TRUE(TranslateQuery(ctx_, Parse(text), without).ok()) << text;
  }
}

TEST_F(TranslateTest, DistributionModeMatchesOracle) {
  // Literal T13/T14 distribution (experiment E10): same answers, larger
  // plans (the bounding context is duplicated into each branch).
  TranslateOptions distributed;
  distributed.distribute_disjunctions = true;
  const char* corpus[] = {
      "{x | R(x) and (S(x) or B(x))}",
      "{x, y | (R(x) and succ(x) = y) or (S(y) and double(y) = x)}",
      "{x | R(x) and (S(x) or B(x)) and (x = 1 or x = 2 or S(x))}",
      "{x | R(x) and exists y (T(x, y) and (S(y) or B(y)))}",
  };
  for (const char* text : corpus) {
    ExpectMatchesOracle(text, distributed);
  }
  // Plan-size comparison on the cross-product case.
  Query q = Parse("{x | R(x) and (S(x) or B(x)) and (x = 1 or x = 2 or "
                  "S(x))}");
  auto threaded = TranslateQuery(ctx_, q);
  auto dist = TranslateQuery(ctx_, q, distributed);
  ASSERT_TRUE(threaded.ok() && dist.ok());
  EXPECT_GT(dist->plan->NodeCount(), threaded->plan->NodeCount());
}

TEST_F(TranslateTest, NaiveCoversProduceSamePlans) {
  TranslateOptions naive;
  naive.bound.use_reduced_covers = false;
  ExpectMatchesOracle("{x, y | (R(x) and succ(x) = y) or (S(y) and "
                      "double(y) = x)}",
                      naive);
}

// --- active-domain baseline ---

class BaselineCase : public TranslateTest,
                     public ::testing::WithParamInterface<const char*> {};

TEST_P(BaselineCase, BaselineMatchesOracle) {
  Query q = Parse(GetParam());
  auto plan = TranslateActiveDomain(ctx_, q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto answer = EvaluateAlgebra(ctx_, *plan, db_, registry_);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  auto oracle = EvaluateCalculus(ctx_, q, db_, registry_);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(*answer, *oracle)
      << GetParam() << "\nplan: " << AlgExprToString(ctx_, *plan);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BaselineCase,
    ::testing::Values(
        "{x | R(x)}",
        "{x | R(x) and not S(x)}",
        "{x, y | T(x, y) and not Q2(x, y)}",
        "{x, y | R(x) and succ(x) = y}",
        "{x | R(x) and exists y (succ(x) = y and not R(y))}",
        "{x | R(x) and forall y (not T(x, y) or S(y))}",
        "{x | R(x) and (S(x) or B(x))}",
        // The baseline also handles non-em-allowed (but em-DI at level k)
        // shapes the direct translation rejects:
        "{x | R(x) and not (S(x) or x = 9)}"));

TEST_F(TranslateTest, BaselinePlansUseAdom) {
  auto plan = TranslateActiveDomain(ctx_, Parse("{x | R(x) and not S(x)}"));
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(AlgExprToString(ctx_, *plan).find("adom"), std::string::npos);
  // The direct translation of the same query avoids adom entirely.
  auto direct = TranslateQuery(ctx_, Parse("{x | R(x) and not S(x)}"));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(AlgExprToString(ctx_, direct->plan).find("adom"),
            std::string::npos);
}

}  // namespace
}  // namespace emcalc
