// Property-based differential tests (P1–P6 in DESIGN.md): random
// em-allowed queries are translated and their plans checked tuple-for-tuple
// against the reference evaluator across random instances, domain
// enlargements, optimizer on/off, reduced covers on/off, and the
// active-domain baseline.
#include <gtest/gtest.h>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/printer.h"
#include "src/core/random_query.h"
#include "src/core/workload.h"
#include "src/eval/calculus_eval.h"
#include "src/translate/active_domain.h"
#include "src/translate/enf.h"
#include "src/translate/pipeline.h"
#include "src/translate/ranf.h"

namespace emcalc {
namespace {

// A registry of small total functions with images inside a compact integer
// range, so term closures in the oracle stay tiny.
FunctionRegistry CompactFunctions() {
  FunctionRegistry reg;
  reg.Register("rf0", 1, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 17;
    return Value::Int((n + 1) % 7);
  });
  reg.Register("rf1", 2, [](std::span<const Value> a) {
    int64_t n = a[0].is_int() ? a[0].AsInt() : 3;
    int64_t m = a[1].is_int() ? a[1].AsInt() : 5;
    return Value::Int((n * 3 + m) % 7);
  });
  return reg;
}

Database RandomInstanceFor(const std::vector<int>& arities, size_t rows,
                           uint64_t seed) {
  Database db;
  for (size_t i = 0; i < arities.size(); ++i) {
    AddRandomTuples(db, "R" + std::to_string(i), arities[i], rows,
                    /*value_pool=*/6, seed + i * 101);
  }
  return db;
}

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

// P1 + P4: translation soundness — plan answer == oracle answer, with and
// without the optimizer, with and without reduced covers.
TEST_P(PropertyTest, TranslationMatchesOracle) {
  AstContext ctx;
  RandomQueryGen gen(ctx, /*seed=*/GetParam());
  FunctionRegistry registry = CompactFunctions();
  int checked = 0;
  for (int i = 0; i < 40 && checked < 12; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    if (CountApplications(q->body) > 4) continue;  // keep oracle domains small
    auto t = TranslateQuery(ctx, *q);
    ASSERT_TRUE(t.ok()) << QueryToString(ctx, *q) << "\n"
                        << t.status().ToString();
    Database db = RandomInstanceFor(gen.relation_arities(), /*rows=*/6,
                                    GetParam() * 977 + i);
    CalculusEvalOptions oracle_options;
    oracle_options.domain_budget = 3000;
    auto oracle = EvaluateCalculus(ctx, *q, db, registry, oracle_options);
    if (!oracle.ok()) continue;  // domain too large for the oracle budget
    auto answer = EvaluateAlgebra(ctx, t->plan, db, registry);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(*answer, *oracle)
        << QueryToString(ctx, *q) << "\nplan: "
        << AlgExprToString(ctx, t->plan);
    // Unoptimized plan agrees (P4).
    auto raw = EvaluateAlgebra(ctx, t->raw_plan, db, registry);
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(*raw, *oracle) << QueryToString(ctx, *q);
    // Naive (unreduced) covers must not change the result (P5).
    TranslateOptions naive;
    naive.bound.use_reduced_covers = false;
    auto t2 = TranslateQuery(ctx, *q, naive);
    ASSERT_TRUE(t2.ok()) << QueryToString(ctx, *q);
    auto answer2 = EvaluateAlgebra(ctx, t2->plan, db, registry);
    ASSERT_TRUE(answer2.ok());
    EXPECT_EQ(*answer2, *oracle) << QueryToString(ctx, *q);
    ++checked;
  }
  EXPECT_GT(checked, 0) << "generator produced no usable em-allowed queries";
}

// P2: embedded domain independence evidence — answers of em-allowed
// queries are invariant under junk-value domain enlargement and level
// increases.
TEST_P(PropertyTest, EmAllowedQueriesAreDomainIndependent) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() + 5000);
  FunctionRegistry registry = CompactFunctions();
  int checked = 0;
  for (int i = 0; i < 40 && checked < 8; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    if (CountApplications(q->body) > 3) continue;
    Database db = RandomInstanceFor(gen.relation_arities(), 5,
                                    GetParam() * 31 + i);
    CalculusEvalOptions base;
    base.domain_budget = 3000;
    auto a = EvaluateCalculus(ctx, *q, db, registry, base);
    if (!a.ok()) continue;
    CalculusEvalOptions junk = base;
    junk.extra_domain = {Value::Int(999), Value::Int(-7),
                         Value::Str("junk")};
    junk.domain_budget = 20000;
    auto b = EvaluateCalculus(ctx, *q, db, registry, junk);
    if (!b.ok()) continue;
    EXPECT_EQ(*a, *b) << QueryToString(ctx, *q);
    CalculusEvalOptions deeper = base;
    deeper.level = CountApplications(q->body) + 2;
    deeper.domain_budget = 20000;
    auto c = EvaluateCalculus(ctx, *q, db, registry, deeper);
    if (!c.ok()) continue;
    EXPECT_EQ(*a, *c) << QueryToString(ctx, *q);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// P6: the AB88-style baseline agrees with the direct translation.
TEST_P(PropertyTest, BaselineAgreesWithDirectTranslation) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() + 9000);
  FunctionRegistry registry = CompactFunctions();
  int checked = 0;
  for (int i = 0; i < 40 && checked < 8; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    if (CountApplications(q->body) > 3) continue;
    auto direct = TranslateQuery(ctx, *q);
    ASSERT_TRUE(direct.ok()) << QueryToString(ctx, *q);
    auto baseline = TranslateActiveDomain(ctx, *q);
    ASSERT_TRUE(baseline.ok()) << QueryToString(ctx, *q);
    Database db = RandomInstanceFor(gen.relation_arities(), 5,
                                    GetParam() * 53 + i);
    auto a = EvaluateAlgebra(ctx, direct->plan, db, registry);
    ASSERT_TRUE(a.ok());
    AlgebraEvalOptions budget;
    budget.adom_budget = 100000;
    auto b = EvaluateAlgebra(ctx, *baseline, db, registry, nullptr, budget);
    if (!b.ok()) continue;  // closure budget blown: skip
    EXPECT_EQ(*a, *b) << QueryToString(ctx, *q) << "\nbaseline: "
                      << AlgExprToString(ctx, *baseline);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// P4 (pass-level): ENF and RANF preserve the reference semantics and their
// structural predicates hold.
TEST_P(PropertyTest, EnfAndRanfPreserveSemantics) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() + 13000);
  FunctionRegistry registry = CompactFunctions();
  int checked = 0;
  for (int i = 0; i < 40 && checked < 8; ++i) {
    auto q = gen.NextEmAllowed();
    if (!q.has_value()) continue;
    if (CountApplications(q->body) > 3) continue;
    const Formula* enf = ToEnf(ctx, q->body);
    EXPECT_TRUE(IsEnf(enf)) << FormulaToString(ctx, enf);
    auto ranf = ToRanf(ctx, enf, SymbolSet{});
    ASSERT_TRUE(ranf.ok()) << QueryToString(ctx, *q) << "\n"
                           << ranf.status().ToString();
    EXPECT_TRUE(IsRanf(*ranf, SymbolSet{}));
    Database db = RandomInstanceFor(gen.relation_arities(), 5,
                                    GetParam() * 71 + i);
    // All three formulas must agree under the oracle. Use the original
    // query's level for all (rewrites must not need deeper closures).
    CalculusEvalOptions options;
    options.level = CountApplications(q->body) + 1;
    options.domain_budget = 5000;
    auto a = EvaluateCalculus(ctx, *q, db, registry, options);
    if (!a.ok()) continue;
    Query q_enf{q->head, enf};
    Query q_ranf{q->head, *ranf};
    auto b = EvaluateCalculus(ctx, q_enf, db, registry, options);
    auto c = EvaluateCalculus(ctx, q_ranf, db, registry, options);
    ASSERT_TRUE(b.ok() && c.ok());
    EXPECT_EQ(*a, *b) << QueryToString(ctx, *q) << "\nENF: "
                      << FormulaToString(ctx, enf);
    EXPECT_EQ(*a, *c) << QueryToString(ctx, *q) << "\nRANF: "
                      << FormulaToString(ctx, *ranf);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// Safety soundness: queries the checker REJECTS are never silently
// translated into something wrong — translation refuses them.
TEST_P(PropertyTest, RejectedQueriesDoNotTranslate) {
  AstContext ctx;
  RandomQueryGen gen(ctx, GetParam() + 17000);
  int rejected = 0;
  for (int i = 0; i < 60 && rejected < 10; ++i) {
    Query q = gen.Next();
    if (CheckEmAllowed(ctx, q).em_allowed) continue;
    if (!CheckWellFormed(q, ctx.symbols()).ok()) continue;
    auto t = TranslateQuery(ctx, q);
    EXPECT_FALSE(t.ok()) << QueryToString(ctx, q);
    ++rejected;
  }
  EXPECT_GT(rejected, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

}  // namespace
}  // namespace emcalc
