// Tests for the public facade (emcalc::Compiler / CompiledQuery) and the
// workload generators.
#include <gtest/gtest.h>

#include "src/core/compiler.h"
#include "src/core/workload.h"

namespace emcalc {
namespace {

TEST(CompilerTest, CompileAndRun) {
  Compiler compiler;
  Database db;
  ASSERT_TRUE(db.Insert("R", {Value::Int(1)}).ok());
  ASSERT_TRUE(db.Insert("R", {Value::Int(2)}).ok());
  ASSERT_TRUE(db.Insert("S", {Value::Int(3)}).ok());
  auto q = compiler.Compile("{x, y | R(x) and succ(x) = y and not S(y)}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto answer = q->Run(db);
  ASSERT_TRUE(answer.ok());
  Relation expected(2);
  expected.Insert({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(*answer, expected);
}

TEST(CompilerTest, ParseErrorsSurface) {
  Compiler compiler;
  auto q = compiler.Compile("{x | R(x");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompilerTest, UnsafeQueriesReportReason) {
  Compiler compiler;
  auto q = compiler.Compile("{x | not R(x)}");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotSafe);
  EXPECT_NE(q.status().message().find("em-allowed"), std::string::npos);
}

TEST(CompilerTest, PlanStringsAreReadable) {
  Compiler compiler;
  auto q = compiler.Compile("{x, y, z | R(x, y, z) and not S(y, z)}");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->PlanString(),
            "(R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S)))");
  EXPECT_NE(q->PlanTreeString().find("difference"), std::string::npos);
  EXPECT_EQ(q->QueryString(), "{x, y, z | R(x, y, z) and not S(y, z)}");
}

TEST(CompilerTest, CustomFunctions) {
  FunctionRegistry reg;
  reg.Register("tax", 1, [](std::span<const Value> a) {
    return Value::Int(a[0].AsInt() * 30 / 100);
  });
  Compiler compiler(std::move(reg));
  Database db;
  ASSERT_TRUE(db.Insert("SAL", {Value::Int(1000)}).ok());
  auto q = compiler.Compile("{t | exists s (SAL(s) and t = tax(s))}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto answer = q->Run(db);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_TRUE(answer->Contains({Value::Int(300)}));
}

TEST(CompilerTest, UnknownFunctionFailsAtRun) {
  Compiler compiler;  // builtins only; 'mystery' is not among them
  Database db;
  ASSERT_TRUE(db.Insert("R", {Value::Int(1)}).ok());
  auto q = compiler.Compile("{x, y | R(x) and mystery(x) = y}");
  ASSERT_TRUE(q.ok());  // compiles: safety is purely syntactic
  auto answer = q->Run(db);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kNotFound);
}

TEST(CompilerTest, StatsPlumbThrough) {
  Compiler compiler;
  Database db;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Insert("R", {Value::Int(i)}).ok());
  }
  auto q = compiler.Compile("{x, y | R(x) and succ(x) = y}");
  ASSERT_TRUE(q.ok());
  AlgebraEvalStats stats;
  ASSERT_TRUE(q->Run(db, &stats).ok());
  EXPECT_GT(stats.tuples_produced, 0u);
  EXPECT_EQ(stats.function_calls, 10u);
}

TEST(CompilerTest, ManyQueriesShareOneContext) {
  Compiler compiler;
  Database db;
  ASSERT_TRUE(db.Insert("R", {Value::Int(1)}).ok());
  std::vector<CompiledQuery> queries;
  for (int i = 0; i < 20; ++i) {
    auto q = compiler.Compile("{x | R(x) and x != " + std::to_string(i) +
                              "}");
    ASSERT_TRUE(q.ok());
    queries.push_back(std::move(q).value());
  }
  for (int i = 0; i < 20; ++i) {
    auto answer = queries[i].Run(db);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer->size(), i == 1 ? 0u : 1u);
  }
}

TEST(WorkloadTest, RandomDatabaseShapes) {
  Database db = RandomDatabase({{"A", 2}, {"C", 1}}, 50, 10, 42);
  ASSERT_NE(db.Find("A"), nullptr);
  ASSERT_NE(db.Find("C"), nullptr);
  EXPECT_EQ(db.Find("A")->arity(), 2);
  EXPECT_LE(db.Find("A")->size(), 50u);  // dedup may shrink
  EXPECT_GT(db.Find("A")->size(), 10u);
}

TEST(WorkloadTest, DeterministicForSeed) {
  Database a = RandomDatabase({{"A", 2}}, 30, 8, 7);
  Database b = RandomDatabase({{"A", 2}}, 30, 8, 7);
  EXPECT_EQ(*a.Find("A"), *b.Find("A"));
}

TEST(WorkloadTest, Q6InstanceSchema) {
  Database db = MakeQ6Instance(100, 50, 20, 1);
  EXPECT_EQ(db.Find("R")->arity(), 3);
  EXPECT_EQ(db.Find("S")->arity(), 2);
}

TEST(WorkloadTest, PayrollInstanceSchema) {
  Database db = MakePayrollInstance(100, 5, 3);
  EXPECT_EQ(db.Find("EMP")->arity(), 3);
  EXPECT_EQ(db.Find("EMP")->size(), 100u);
  EXPECT_EQ(db.Find("DEPT")->size(), 5u);
  EXPECT_GE(db.Find("BONUS")->size(), 1u);
}

TEST(WorkloadTest, StringShareProducesStrings) {
  Database db;
  AddRandomTuples(db, "M", 1, 200, 10, 9, /*string_share=*/1.0);
  for (TupleRef t : *db.Find("M")) {
    EXPECT_TRUE(t[0].is_str());
  }
}

}  // namespace
}  // namespace emcalc
