// The paper's worked examples, end to end (experiment E1): each named
// query from the paper translates to (the shape of) the algebra expression
// the paper reports, carries the claimed safety classification, and
// evaluates correctly.
#include <gtest/gtest.h>

#include "src/algebra/eval.h"
#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/core/random_query.h"
#include "src/eval/calculus_eval.h"
#include "src/safety/allowed.h"
#include "src/safety/em_allowed.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  PaperExamplesTest() : registry_(BuiltinFunctions()) {}

  Query Parse(std::string_view text) {
    auto q = ParseQuery(ctx_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.ok() ? *q : Query{};
  }

  std::string Plan(std::string_view text) {
    auto t = TranslateQuery(ctx_, Parse(text));
    EXPECT_TRUE(t.ok()) << text << " : " << t.status().ToString();
    return t.ok() ? AlgExprToString(ctx_, t->plan) : "";
  }

  AstContext ctx_;
  FunctionRegistry registry_;
};

// q1 (Introduction): {y | exists x (R(x) and y = g(f(x)))} is equivalent
// to project([g(f(@1))], R).
TEST_F(PaperExamplesTest, Q1TranslatesToExtendedProjection) {
  EXPECT_EQ(Plan("{y | exists x (R(x) and y = g(f(x)))}"),
            "project([g(f(@1))], R)");
}

TEST_F(PaperExamplesTest, Q1Evaluates) {
  Database db;
  ASSERT_TRUE(db.Insert("R", {Value::Int(3)}).ok());
  ASSERT_TRUE(db.Insert("R", {Value::Int(5)}).ok());
  FunctionRegistry reg;
  reg.Register("f", 1, [](std::span<const Value> a) {
    return Value::Int(a[0].AsInt() * 10);
  });
  reg.Register("g", 1, [](std::span<const Value> a) {
    return Value::Int(a[0].AsInt() + 1);
  });
  auto t = TranslateQuery(ctx_, Parse("{y | exists x (R(x) and y = g(f(x)))}"));
  ASSERT_TRUE(t.ok());
  auto answer = EvaluateAlgebra(ctx_, t->plan, db, reg);
  ASSERT_TRUE(answer.ok());
  Relation expected(1);
  expected.Insert({Value::Int(31)});
  expected.Insert({Value::Int(51)});
  EXPECT_EQ(*answer, expected);
}

// q2 (Section 2): R(x) and exists y (f(x) = y and not R(y)) is em-allowed
// but not range-restricted [AB88].
TEST_F(PaperExamplesTest, Q2EmAllowedButNotRangeRestricted) {
  auto f = ParseFormula(ctx_, "R(x) and exists y (f(x) = y and not R(y))");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(CheckEmAllowed(ctx_, *f).em_allowed);
  EXPECT_FALSE(IsRangeRestricted(ctx_, *f));
  // And it translates — producing a difference inside, not an adom scan.
  std::string plan =
      Plan("{x | R(x) and exists y (f(x) = y and not R(y))}");
  EXPECT_NE(plan.find(" - "), std::string::npos) << plan;
  EXPECT_EQ(plan.find("adom"), std::string::npos) << plan;
}

// q4 (Introduction; bounding atom B(x) added, DESIGN.md R3): em-allowed
// and embedded domain independent, Top91-safe, but untranslatable without
// the new transformation T10.
TEST_F(PaperExamplesTest, Q4RequiresT10) {
  const char* q4 =
      "{x, y | B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
      "((h(x) != y and k(x) != y) or P(x, y)))}";
  Query q = Parse(q4);
  EXPECT_TRUE(CheckEmAllowed(ctx_, q).em_allowed);
  EXPECT_TRUE(IsTop91Safe(ctx_, q.body));
  EXPECT_TRUE(TranslateQuery(ctx_, q).ok());
  TranslateOptions gt91_only;
  gt91_only.enable_t10 = false;
  EXPECT_FALSE(TranslateQuery(ctx_, q, gt91_only).ok());
}

TEST_F(PaperExamplesTest, Q4EvaluatesCorrectly) {
  // Answer = {(x, v) | B(x), v in {f(x),g(x)} with not R(x,v), or
  //                    v in {h(x),k(x)} with not P(x,v)}.
  Database db;
  ASSERT_TRUE(db.Insert("B", {Value::Int(1)}).ok());
  ASSERT_TRUE(db.AddRelation("R", 2).ok());
  ASSERT_TRUE(db.AddRelation("P", 2).ok());
  ASSERT_TRUE(db.Insert("R", {Value::Int(1), Value::Int(11)}).ok());
  FunctionRegistry reg;
  auto constant_fn = [](int64_t delta) {
    return [delta](std::span<const Value> a) {
      return Value::Int(a[0].AsInt() + delta);
    };
  };
  reg.Register("f", 1, constant_fn(10));   // f(1)=11, blocked by R
  reg.Register("g", 1, constant_fn(20));   // g(1)=21
  reg.Register("h", 1, constant_fn(30));   // h(1)=31
  reg.Register("k", 1, constant_fn(40));   // k(1)=41
  const char* q4 =
      "{x, y | B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
      "((h(x) != y and k(x) != y) or P(x, y)))}";
  auto t = TranslateQuery(ctx_, Parse(q4));
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto answer = EvaluateAlgebra(ctx_, t->plan, db, reg);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  Relation expected(2);
  expected.Insert({Value::Int(1), Value::Int(21)});  // g(1), not R
  expected.Insert({Value::Int(1), Value::Int(31)});  // h(1), not P
  expected.Insert({Value::Int(1), Value::Int(41)});  // k(1), not P
  EXPECT_EQ(*answer, expected) << answer->ToString();
  // Cross-check with the reference evaluator.
  auto oracle = EvaluateCalculus(ctx_, Parse(q4), db, reg);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(*answer, *oracle);
}

// q5 (Section 2): em-allowed but not Top91-safe.
TEST_F(PaperExamplesTest, Q5EmAllowedButNotTop91Safe) {
  auto f =
      ParseFormula(ctx_, "(R(x) and f(x) = y) or (S(y) and g(y) = x)");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(CheckEmAllowed(ctx_, *f).em_allowed);
  EXPECT_FALSE(IsTop91Safe(ctx_, *f));
  // Translates to a union of two extended projections.
  std::string plan = Plan("{x, y | (R(x) and f(x) = y) or (S(y) and "
                          "g(y) = x)}");
  EXPECT_NE(plan.find(" + "), std::string::npos) << plan;
  EXPECT_NE(plan.find("f(@1)"), std::string::npos) << plan;
}

// q6 (Section 2, vs [AB88]): {x,y,z | R(x,y,z) and not S(y,z)} translates
// directly to R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S)).
TEST_F(PaperExamplesTest, Q6TranslatesToDifference) {
  EXPECT_EQ(Plan("{x, y, z | R(x, y, z) and not S(y, z)}"),
            "(R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S)))");
}

// q7 (Section 2, vs [Top91]): {x | x = 0 and forall u exists v (u+1 = v)}
// is NOT embedded domain independent and must be rejected.
TEST_F(PaperExamplesTest, Q7RejectedAsNotEmAllowed) {
  Query q = Parse("{x | x = 0 and forall u (exists v (plus(u, 1) = v))}");
  EXPECT_FALSE(CheckEmAllowed(ctx_, q).em_allowed);
  auto t = TranslateQuery(ctx_, q);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotSafe);
}

// Containment table (experiment E8): em-allowed strictly contains each
// comparison criterion on the corpus witnesses.
TEST_F(PaperExamplesTest, CriteriaContainmentWitnesses) {
  struct Row {
    const char* text;
    bool em, gt91, rr, top91;
  };
  const Row rows[] = {
      // function-free classic: all criteria agree
      {"R(x, y) and not S(y)", true, true, true, true},
      // q2: em yes, rr no
      {"R(x) and exists y (f(x) = y and not R(y))", true, false, false,
       true},
      // q5: em yes, top91 no
      {"(R(x) and f(x) = y) or (S(y) and g(y) = x)", true, false, true,
       false},
      // complement: nobody accepts
      {"not R(x)", false, false, false, false},
  };
  for (const Row& row : rows) {
    auto f = ParseFormula(ctx_, row.text);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(CheckEmAllowed(ctx_, *f).em_allowed, row.em) << row.text;
    EXPECT_EQ(IsAllowedGT91(ctx_, *f), row.gt91) << row.text;
    EXPECT_EQ(IsRangeRestricted(ctx_, *f), row.rr) << row.text;
    EXPECT_EQ(IsTop91Safe(ctx_, *f), row.top91) << row.text;
  }
}

// The paper: "if phi has no function symbols, then phi is em-allowed if
// and only if phi is allowed in the sense of [GT91]" — checked over a
// large random function-free corpus.
TEST_F(PaperExamplesTest, FunctionFreeEmAllowedEqualsAllowed) {
  AstContext ctx;
  RandomQueryOptions options;
  options.num_functions = 0;  // function-free corpus
  options.p_function_eq = 0.0;
  RandomQueryGen gen(ctx, 1337, options);
  int checked = 0;
  for (int i = 0; i < 500; ++i) {
    Query q = gen.Next();
    ASSERT_FALSE(HasFunctions(q.body));
    EXPECT_EQ(IsAllowedGT91(ctx, q.body),
              CheckEmAllowed(ctx, q.body).em_allowed)
        << QueryToString(ctx, q);
    ++checked;
  }
  EXPECT_EQ(checked, 500);
}

// Theorem 6.6 witnessed numerically: em-allowed corpus answers are stable
// across closure levels at and beyond CountApplications (>= ||phi|| - 1).
TEST_F(PaperExamplesTest, Theorem66LevelStability) {
  Database db;
  ASSERT_TRUE(db.Insert("R", {Value::Int(1)}).ok());
  ASSERT_TRUE(db.Insert("R", {Value::Int(4)}).ok());
  ASSERT_TRUE(db.Insert("S", {Value::Int(2)}).ok());
  const char* corpus[] = {
      "{x | R(x) and exists y (succ(x) = y and not R(y))}",
      "{x, y | R(x) and succ(x) = y and not S(y)}",
  };
  for (const char* text : corpus) {
    Query q = Parse(text);
    CalculusEvalOptions at;
    auto base = EvaluateCalculus(ctx_, q, db, registry_, at);
    ASSERT_TRUE(base.ok());
    for (int level = 2; level <= 4; ++level) {
      CalculusEvalOptions higher;
      higher.level = level;
      auto more = EvaluateCalculus(ctx_, q, db, registry_, higher);
      ASSERT_TRUE(more.ok());
      EXPECT_EQ(*base, *more) << text << " at level " << level;
    }
  }
}

}  // namespace
}  // namespace emcalc
