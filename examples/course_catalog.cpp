// Course-catalog scheduling: universal quantification, negation, and
// scalar functions over meeting periods. Shows the forall -> not-exists
// translation and difference-based plans on a realistic schema:
//
//   COURSE(course, dept)
//   MEETS(course, period)            -- a course meets at several periods
//   TAKEN(student, course)
//   OPEN(period)                     -- periods the lab is open
//
// succ(period) models "the following period" via the builtin succ().
#include <cstdio>

#include "src/core/compiler.h"

namespace {

void Show(const emcalc::CompiledQuery& q, const emcalc::Database& db,
          const char* label) {
  std::printf("\n== %s ==\nquery: %s\nplan:  %s\n", label,
              q.QueryString().c_str(), q.PlanString().c_str());
  auto answer = q.Run(db);
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return;
  }
  std::printf("answer:\n%s", answer->ToString().c_str());
}

}  // namespace

int main() {
  using emcalc::Value;
  emcalc::Database db;
  struct {
    const char* course;
    const char* dept;
  } courses[] = {{"db", "cs"}, {"logic", "cs"}, {"algebra", "math"},
                 {"calculus", "math"}};
  for (const auto& c : courses) {
    if (!db.Insert("COURSE", {Value::Str(c.course), Value::Str(c.dept)})
             .ok()) {
      return 1;
    }
  }
  struct {
    const char* course;
    int period;
  } meets[] = {{"db", 1},      {"db", 3},      {"logic", 2},
               {"algebra", 2}, {"algebra", 4}, {"calculus", 5}};
  for (const auto& m : meets) {
    if (!db.Insert("MEETS", {Value::Str(m.course), Value::Int(m.period)})
             .ok()) {
      return 1;
    }
  }
  struct {
    const char* student;
    const char* course;
  } taken[] = {{"ana", "db"}, {"ana", "algebra"}, {"bob", "db"},
               {"bob", "logic"}, {"eve", "calculus"}};
  for (const auto& t : taken) {
    if (!db.Insert("TAKEN", {Value::Str(t.student), Value::Str(t.course)})
             .ok()) {
      return 1;
    }
  }
  for (int p : {1, 2, 3, 4}) {
    if (!db.Insert("OPEN", {Value::Int(p)}).ok()) return 1;
  }

  emcalc::Compiler compiler;

  // 1. forall: courses all of whose meetings fall in open periods.
  auto all_open = compiler.Compile(
      "{c | exists d (COURSE(c, d)) and "
      "forall p (not MEETS(c, p) or OPEN(p))}");
  if (!all_open.ok()) {
    std::printf("%s\n", all_open.status().ToString().c_str());
    return 1;
  }
  Show(*all_open, db, "courses meeting only in open periods");

  // 2. Scalar function + negation: meetings whose *following* period is
  //    not open (no room for overtime) — the q2 pattern on schedules.
  auto no_overtime = compiler.Compile(
      "{c, p | MEETS(c, p) and exists n (succ(p) = n and not OPEN(n))}");
  if (!no_overtime.ok()) return 1;
  Show(*no_overtime, db, "meetings that cannot run over");

  // 3. Pairs of students sharing a course but not everything — join +
  //    negation + inequality.
  auto share = compiler.Compile(
      "{s1, s2 | exists c (TAKEN(s1, c) and TAKEN(s2, c)) and s1 != s2 and "
      "not exists c2 (TAKEN(s1, c2) and not TAKEN(s2, c2))}");
  if (!share.ok()) {
    std::printf("%s\n", share.status().ToString().c_str());
    return 1;
  }
  Show(*share, db, "students whose courses are covered by a classmate");

  // 4. A schedule-conflict check as a boolean query: is any period
  //    double-booked within a department?
  auto conflict = compiler.Compile(
      "{ | exists c1, c2, d, p (COURSE(c1, d) and COURSE(c2, d) and "
      "c1 != c2 and MEETS(c1, p) and MEETS(c2, p))}");
  if (!conflict.ok()) return 1;
  Show(*conflict, db, "any departmental conflict? (empty = no)");

  return 0;
}
