// An interactive shell for emcalc. Reads commands/queries from stdin, so
// it also works in pipes:
//
//   $ printf 'rel EDGE 1,2\n{x | EDGE(x, y)}\nquit\n' | ./repl
//
// Commands (everything else is parsed as a query):
//   rel NAME ROW[;ROW...]   define a relation from inline CSV rows
//   load NAME PATH          load a relation from a CSV file
//   show NAME               print a relation
//   plan QUERY              show the safety analysis + plan, don't run
//   profile QUERY           run + EXPLAIN COMPILE / EXPLAIN ANALYZE
//   .lint QUERY             static analysis only: lint + safety diagnostics
//   .why QUERY              explain a safety verdict (FinD blame trace)
//   .trace FILE | .trace off   capture spans, write Chrome trace JSON
//   .metrics                print a metrics registry snapshot
//   .mem                    print process memory accounting
//   .feedback QUERY         run QUERY, print estimate-vs-actual feedback
//   .log FILE | .log off    append per-query JSON-Lines records to FILE
//   .history DIR | off | status   durable per-query-hash feedback store
//                           (records run actuals, corrects estimates)
//   .postmortem DIR | off | status | now   abort/crash bundle control
//   .prometheus             metrics in Prometheus text format
//   .pool                   thread-pool contention telemetry
//   help
//   quit
//
// The EMCALC_TRACE / EMCALC_QUERY_LOG / EMCALC_HISTORY_DIR /
// EMCALC_POSTMORTEM_DIR environment variables enable the same sinks
// without commands (trace flushed at exit; postmortem bundles written on
// governor aborts, run errors, and fatal signals).
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/algebra/printer.h"
#include "src/base/string_pool.h"
#include "src/base/thread_pool.h"
#include "src/calculus/printer.h"
#include "src/core/compiler.h"
#include "src/exec/feedback.h"
#include "src/obs/history.h"
#include "src/obs/inspect.h"
#include "src/obs/metrics.h"
#include "src/obs/postmortem.h"
#include "src/obs/query_log.h"
#include "src/obs/resource.h"
#include "src/obs/trace.h"
#include "src/storage/csv.h"
#include "src/verify/verify.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  rel NAME ROW[;ROW...]   define a relation from inline rows\n"
      "                          e.g. rel EDGE 1,2;2,3;3,1\n"
      "  load NAME PATH          load a relation from a CSV file\n"
      "  show NAME               print a relation\n"
      "  plan QUERY              analyze + translate, don't run\n"
      "  profile QUERY           run with compile + execution profiles\n"
      "  .lint QUERY             lint + safety diagnostics, don't run\n"
      "  .why QUERY              explain the safety verdict for QUERY\n"
      "  .trace FILE | off       capture spans to a Chrome trace file\n"
      "  .metrics                print the metrics registry snapshot\n"
      "  .mem                    print process memory accounting\n"
      "  .feedback QUERY         run QUERY, print est-vs-actual feedback\n"
      "  .log FILE | off         per-query JSON-Lines log\n"
      "  .history DIR | off | status   feedback store: record actuals,\n"
      "                          correct estimates, show the store digest\n"
      "  .postmortem DIR | off | status | now   abort/crash bundles\n"
      "  .prometheus             metrics in Prometheus text format\n"
      "  .pool                   thread-pool contention telemetry\n"
      "  .verify on | off | status   stage-boundary plan verification\n"
      "  help | quit\n"
      "anything else is evaluated as a query, e.g. {x | EDGE(x, y)}\n");
}

void RunQuery(emcalc::Compiler& compiler, emcalc::Database& db,
              const std::string& raw_text, bool execute, bool profile) {
  // `plan Q` / `profile Q` arrive with the separator space still attached;
  // trim so Q hashes identically to a bare run of the same query (the
  // query log and history store join on the text hash).
  std::string text = raw_text;
  text.erase(0, text.find_first_not_of(" \t"));
  auto q = compiler.Compile(text);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  std::printf("plan: %s\n", q->PlanString().c_str());
  if (!execute) return;
  if (profile) {
    std::printf("-- explain compile --\n%s", q->ExplainCompile().c_str());
    auto report = q->ExplainAnalyze(db);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return;
    }
    std::printf("-- explain analyze --\n%s", report->c_str());
    return;
  }
  emcalc::AlgebraEvalStats stats;
  auto answer = q->Run(db, &stats);
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu tuples, %llu produced while evaluating)\n",
              answer->ToString().c_str(), answer->size(),
              static_cast<unsigned long long>(stats.tuples_produced));
}

// `.lint`: the full diagnostic report (lint rules + safety blame).
void LintQuery(emcalc::Compiler& compiler, const std::string& text) {
  emcalc::QueryAnalysis analysis = compiler.Analyze(text);
  if (analysis.diagnostics.empty()) {
    std::printf("ok: no diagnostics\n");
    return;
  }
  std::printf("%s", analysis.Render().c_str());
}

// `.mem`: the tracked-memory view of the process — the global accountant,
// the intern pool, and the execution gauges.
void PrintMemory() {
  auto& acct = emcalc::obs::MemoryAccountant::Instance();
  std::printf("tracked bytes:     %lld\n",
              static_cast<long long>(acct.bytes()));
  std::printf("peak bytes:        %lld\n",
              static_cast<long long>(acct.peak_bytes()));
  std::printf("allocated bytes:   %llu\n",
              static_cast<unsigned long long>(acct.bytes_allocated()));
  auto& pool = emcalc::StringPool::Global();
  std::printf("string pool:       %zu values, %llu bytes\n", pool.size(),
              static_cast<unsigned long long>(pool.bytes()));
  auto& reg = emcalc::obs::MetricsRegistry::Instance();
  std::printf("peak query bytes:  %lld\n",
              static_cast<long long>(
                  reg.GetGauge("exec.peak_query_bytes").value()));
  std::printf("queries aborted:   %llu\n",
              static_cast<unsigned long long>(
                  reg.GetCounter("exec.queries_aborted").value()));
}

// `.feedback`: run the query and print the estimate-vs-actual report.
void FeedbackQuery(emcalc::Compiler& compiler, emcalc::Database& db,
                   const std::string& text) {
  auto q = compiler.Compile(text);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  emcalc::ExecProfile profile;
  auto answer = q->RunWithProfile(db, &profile);
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return;
  }
  std::printf("answer rows: %zu\n", answer->size());
  emcalc::PlanFeedback feedback = emcalc::BuildPlanFeedback(profile);
  std::printf("%s", feedback.ToString().c_str());
}

// `.why`: just the safety verdict, with the blame trace on rejection.
void ExplainSafety(emcalc::Compiler& compiler, const std::string& text) {
  emcalc::QueryAnalysis analysis = compiler.Analyze(text);
  if (!analysis.parsed) {
    std::printf("%s", analysis.Render().c_str());
    return;
  }
  if (analysis.safe) {
    std::printf("em-allowed: yes\n");
    return;
  }
  std::printf("em-allowed: no\n");
  for (const emcalc::diag::Diagnostic& d : analysis.diagnostics) {
    if (d.severity == emcalc::diag::Severity::kError) {
      std::printf("%s", emcalc::diag::Render(d, analysis.text).c_str());
    }
  }
}

// Repl-owned trace capture (the `.trace` command). Separate from the
// EMCALC_TRACE-driven process tracer, which flushes via atexit.
struct TraceCapture {
  emcalc::obs::Tracer tracer;
  std::string path;

  void Flush() {
    if (path.empty()) return;
    emcalc::Status s = tracer.WriteChromeTrace(path);
    if (s.ok()) {
      std::printf("wrote %zu spans to %s\n", tracer.size(), path.c_str());
    } else {
      std::printf("error: %s\n", s.ToString().c_str());
    }
  }

  void Start(const std::string& new_path) {
    Flush();
    tracer.Clear();
    path = new_path;
    emcalc::obs::SetTracer(&tracer);
    std::printf("tracing to %s\n", path.c_str());
  }

  void Stop() {
    if (path.empty()) {
      std::printf("tracing is not active\n");
      return;
    }
    Flush();
    if (emcalc::obs::GetTracer() == &tracer) {
      emcalc::obs::SetTracer(nullptr);
    }
    tracer.Clear();
    path.clear();
  }
};

}  // namespace

int main() {
  emcalc::obs::InitTracingFromEnv();
  emcalc::obs::InitQueryLogFromEnv();
  emcalc::obs::InitHistoryFromEnv();
  emcalc::obs::InitPostmortemFromEnv();
  emcalc::obs::InstallCrashHandler();
  emcalc::Compiler compiler;
  emcalc::Database db;
  TraceCapture capture;
  std::unique_ptr<emcalc::obs::QueryLog> query_log;
  std::unique_ptr<emcalc::obs::HistoryStore> history;
  std::printf("emcalc shell — 'help' for commands\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == ".trace") {
      std::string arg;
      words >> arg;
      if (arg.empty() || arg == "off") {
        capture.Stop();
      } else {
        capture.Start(arg);
      }
      continue;
    }
    if (command == ".metrics") {
      std::printf("%s", emcalc::obs::MetricsRegistry::Instance()
                            .TextSnapshot()
                            .c_str());
      continue;
    }
    if (command == ".mem") {
      PrintMemory();
      continue;
    }
    if (command == ".prometheus") {
      std::printf("%s", emcalc::obs::MetricsRegistry::Instance()
                            .RenderPrometheus()
                            .c_str());
      continue;
    }
    if (command == ".pool") {
      std::printf("%s\n",
                  emcalc::ThreadPool::GlobalTelemetryJson().c_str());
      continue;
    }
    if (command == ".postmortem") {
      std::string arg;
      words >> arg;
      if (arg.empty() || arg == "status") {
        std::string dir = emcalc::obs::PostmortemDir();
        std::printf("postmortem: %s (%llu bundles written)\n",
                    dir.empty() ? "off" : dir.c_str(),
                    static_cast<unsigned long long>(
                        emcalc::obs::PostmortemCount()));
      } else if (arg == "off") {
        emcalc::obs::SetPostmortemDir("");
        std::printf("postmortem off\n");
      } else if (arg == "now") {
        emcalc::obs::PostmortemInfo info;
        info.reason = "manual";
        auto path = emcalc::obs::WritePostmortem(info);
        if (path.ok()) {
          std::printf("wrote %s\n", path->c_str());
        } else {
          std::printf("error: %s\n", path.status().ToString().c_str());
        }
      } else {
        emcalc::obs::SetPostmortemDir(arg);
        emcalc::obs::InstallCrashHandler();
        std::printf("postmortem bundles to %s\n", arg.c_str());
      }
      continue;
    }
    if (command == ".feedback") {
      std::string rest;
      std::getline(words, rest);
      FeedbackQuery(compiler, db, rest);
      continue;
    }
    if (command == ".log") {
      std::string arg;
      words >> arg;
      if (arg.empty() || arg == "off") {
        if (query_log != nullptr &&
            emcalc::obs::GetQueryLog() == query_log.get()) {
          emcalc::obs::SetQueryLog(nullptr);
        }
        query_log.reset();
        std::printf("query log off\n");
        continue;
      }
      auto log = emcalc::obs::QueryLog::Open(arg);
      if (!log.ok()) {
        std::printf("error: %s\n", log.status().ToString().c_str());
        continue;
      }
      query_log = std::move(log).value();
      emcalc::obs::SetQueryLog(query_log.get());
      std::printf("query log to %s\n", arg.c_str());
      continue;
    }
    if (command == ".history") {
      std::string arg;
      words >> arg;
      if (arg.empty() || arg == "status") {
        emcalc::obs::HistoryStore* store = emcalc::obs::GetHistoryStore();
        if (store == nullptr) {
          std::printf("history: off\n");
        } else {
          std::printf("history: %s\n", store->path().c_str());
          std::printf("%s",
                      emcalc::obs::RenderHistory(store->Scan(), 5).c_str());
        }
        continue;
      }
      if (arg == "off") {
        if (history != nullptr &&
            emcalc::obs::GetHistoryStore() == history.get()) {
          emcalc::obs::SetHistoryStore(nullptr);
        }
        history.reset();
        std::printf("history off\n");
        continue;
      }
      auto store = emcalc::obs::HistoryStore::Open(arg);
      if (!store.ok()) {
        std::printf("error: %s\n", store.status().ToString().c_str());
        continue;
      }
      history = std::move(store).value();
      emcalc::obs::SetHistoryStore(history.get());
      std::printf("history to %s (%zu queries, %llu runs)\n",
                  history->path().c_str(), history->query_count(),
                  static_cast<unsigned long long>(history->total_runs()));
      continue;
    }
    if (command == "rel") {
      std::string name, rows;
      words >> name;
      std::getline(words, rows);
      std::string csv = rows;
      for (char& c : csv) {
        if (c == ';') c = '\n';
      }
      emcalc::Status s = emcalc::LoadCsvText(db, name, csv);
      std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      continue;
    }
    if (command == "load") {
      std::string name, path;
      words >> name >> path;
      emcalc::Status s = emcalc::LoadCsvFile(db, name, path);
      std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      continue;
    }
    if (command == "show") {
      std::string name;
      words >> name;
      const emcalc::Relation* rel = db.Find(name);
      if (rel == nullptr) {
        std::printf("unknown relation '%s'\n", name.c_str());
      } else {
        std::printf("%s", rel->ToString().c_str());
      }
      continue;
    }
    if (command == ".verify") {
      std::string arg;
      words >> arg;
      if (arg == "on") {
        emcalc::verify::ForceEnabled(1);
        std::printf("stage-boundary verification on\n");
      } else if (arg == "off") {
        emcalc::verify::ForceEnabled(0);
        std::printf("stage-boundary verification off\n");
      } else if (arg == "default") {
        emcalc::verify::ForceEnabled(-1);
        std::printf("stage-boundary verification %s (build/env default)\n",
                    emcalc::verify::Enabled() ? "on" : "off");
      } else {
        std::printf("stage-boundary verification %s\n",
                    emcalc::verify::Enabled() ? "on" : "off");
      }
      continue;
    }
    if (command == ".lint") {
      std::string rest;
      std::getline(words, rest);
      LintQuery(compiler, rest);
      continue;
    }
    if (command == ".why") {
      std::string rest;
      std::getline(words, rest);
      ExplainSafety(compiler, rest);
      continue;
    }
    if (command == "plan") {
      std::string rest;
      std::getline(words, rest);
      RunQuery(compiler, db, rest, /*execute=*/false, /*profile=*/false);
      continue;
    }
    if (command == "profile") {
      std::string rest;
      std::getline(words, rest);
      RunQuery(compiler, db, rest, /*execute=*/true, /*profile=*/true);
      continue;
    }
    RunQuery(compiler, db, line, /*execute=*/true, /*profile=*/false);
  }
  if (!capture.path.empty()) capture.Stop();
  if (query_log != nullptr &&
      emcalc::obs::GetQueryLog() == query_log.get()) {
    emcalc::obs::SetQueryLog(nullptr);
  }
  if (history != nullptr &&
      emcalc::obs::GetHistoryStore() == history.get()) {
    emcalc::obs::SetHistoryStore(nullptr);
  }
  return 0;
}
