// An interactive shell for emcalc. Reads commands/queries from stdin, so
// it also works in pipes:
//
//   $ printf 'rel EDGE 1,2\n{x | EDGE(x, y)}\n' | ./repl
//
// Commands (everything else is parsed as a query):
//   rel NAME ROW[;ROW...]   define a relation from inline CSV rows
//   load NAME PATH          load a relation from a CSV file
//   show NAME               print a relation
//   plan QUERY              show the safety analysis + plan, don't run
//   help                    this text
//   quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "src/algebra/printer.h"
#include "src/calculus/printer.h"
#include "src/core/compiler.h"
#include "src/storage/csv.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  rel NAME ROW[;ROW...]   define a relation from inline rows\n"
      "                          e.g. rel EDGE 1,2;2,3;3,1\n"
      "  load NAME PATH          load a relation from a CSV file\n"
      "  show NAME               print a relation\n"
      "  plan QUERY              analyze + translate, don't run\n"
      "  help | quit\n"
      "anything else is evaluated as a query, e.g. {x | EDGE(x, y)}\n");
}

void RunQuery(emcalc::Compiler& compiler, emcalc::Database& db,
              const std::string& text, bool execute) {
  auto q = compiler.Compile(text);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  std::printf("plan: %s\n", q->PlanString().c_str());
  if (!execute) return;
  emcalc::AlgebraEvalStats stats;
  auto answer = q->Run(db, &stats);
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu tuples, %llu produced while evaluating)\n",
              answer->ToString().c_str(), answer->size(),
              static_cast<unsigned long long>(stats.tuples_produced));
}

}  // namespace

int main() {
  emcalc::Compiler compiler;
  emcalc::Database db;
  std::printf("emcalc shell — 'help' for commands\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "rel") {
      std::string name, rows;
      words >> name;
      std::getline(words, rows);
      std::string csv = rows;
      for (char& c : csv) {
        if (c == ';') c = '\n';
      }
      emcalc::Status s = emcalc::LoadCsvText(db, name, csv);
      std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      continue;
    }
    if (command == "load") {
      std::string name, path;
      words >> name >> path;
      emcalc::Status s = emcalc::LoadCsvFile(db, name, path);
      std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      continue;
    }
    if (command == "show") {
      std::string name;
      words >> name;
      const emcalc::Relation* rel = db.Find(name);
      if (rel == nullptr) {
        std::printf("unknown relation '%s'\n", name.c_str());
      } else {
        std::printf("%s", rel->ToString().c_str());
      }
      continue;
    }
    if (command == "plan") {
      std::string rest;
      std::getline(words, rest);
      RunQuery(compiler, db, rest, /*execute=*/false);
      continue;
    }
    RunQuery(compiler, db, line, /*execute=*/true);
  }
  return 0;
}
