// Quickstart: compile a calculus query with scalar functions, inspect the
// safety analysis and the generated extended-algebra plan, and run it.
//
//   $ ./quickstart
//
// Walks through the full pipeline on a small graph database.
#include <cstdio>

#include "src/algebra/printer.h"
#include "src/calculus/printer.h"
#include "src/core/compiler.h"

int main() {
  using emcalc::Value;

  // 1. Build a database instance: a set of nodes and weighted edges.
  emcalc::Database db;
  for (int i = 1; i <= 5; ++i) {
    if (!db.Insert("NODE", {Value::Int(i)}).ok()) return 1;
  }
  // EDGE(from, to)
  const int edges[][2] = {{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}};
  for (auto [a, b] : edges) {
    if (!db.Insert("EDGE", {Value::Int(a), Value::Int(b)}).ok()) return 1;
  }

  // 2. Compile a query that uses a scalar function: "which nodes have no
  //    edge to their successor value?" succ() is a builtin; queries can
  //    mix relations, functions, negation, and quantifiers freely as long
  //    as they pass the em-allowed safety analysis.
  emcalc::Compiler compiler;
  auto query = compiler.Compile(
      "{x | NODE(x) and not exists y (succ(x) = y and EDGE(x, y))}");
  if (!query.ok()) {
    std::printf("compile error: %s\n", query.status().ToString().c_str());
    return 1;
  }

  std::printf("query:  %s\n", query->QueryString().c_str());
  std::printf("plan:   %s\n", query->PlanString().c_str());
  std::printf("tree:\n%s", query->PlanTreeString().c_str());

  // 3. Run the plan.
  emcalc::AlgebraEvalStats stats;
  auto answer = query->Run(db, &stats);
  if (!answer.ok()) {
    std::printf("run error: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("answer (%zu tuples):\n%s", answer->size(),
              answer->ToString().c_str());
  std::printf("work: %llu tuples produced, %llu scalar calls\n",
              static_cast<unsigned long long>(stats.tuples_produced),
              static_cast<unsigned long long>(stats.function_calls));

  // 4. Unsafe queries are rejected with an explanation instead of running
  //    forever or returning domain-dependent garbage.
  auto unsafe = compiler.Compile("{x | not NODE(x)}");
  if (!unsafe.ok()) {
    std::printf("\nrejected as expected: %s\n",
                unsafe.status().ToString().c_str());
  }
  return 0;
}
