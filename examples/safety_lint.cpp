// safety_lint: a command-line analyzer for calculus queries. For each
// query (from the command line, or a built-in demo corpus) it prints the
// library's full explanation: the bd() finiteness dependencies, how every
// safety criterion from the literature classifies it, the ENF/RANF
// intermediate forms, and the generated extended-algebra plan.
//
//   $ ./safety_lint '{x | R(x) and not S(x)}' ...
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/explain.h"

namespace {

const char* kDemoCorpus[] = {
    "{y | exists x (R(x) and y = g(f(x)))}",
    "{x | R(x) and exists y (f(x) = y and not R(y))}",
    "{x, y | (R(x) and f(x) = y) or (S(y) and g(y) = x)}",
    "{x, y, z | R(x, y, z) and not S(y, z)}",
    "{x, y | B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
    "((h(x) != y and k(x) != y) or P(x, y)))}",
    "{x | x = 0 and forall u (exists v (plus(u, 1) = v))}",
    "{x | not R(x)}",
    "{x | R(x) and x < 10}",
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) inputs.emplace_back(argv[i]);
  if (inputs.empty()) {
    for (const char* q : kDemoCorpus) inputs.emplace_back(q);
  }
  for (const std::string& text : inputs) {
    std::printf(
        "----------------------------------------------------------\n");
    emcalc::AstContext ctx;
    auto explanation = emcalc::ExplainQuery(ctx, text);
    if (!explanation.ok()) {
      std::printf("query: %s\n  error: %s\n", text.c_str(),
                  explanation.status().ToString().c_str());
      continue;
    }
    std::printf("%s", explanation->ToString().c_str());
  }
  return 0;
}
