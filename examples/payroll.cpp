// Payroll analytics: the paper's motivating scenario — calculus queries
// embedded in a host program, calling the host's own scalar functions
// (tax, raises, bonus policies) inside query formulas.
//
// Demonstrates: custom function registries, function composition in
// queries, negation + functions (the q2 pattern), and evaluation cost
// reporting.
#include <cstdio>

#include "src/core/compiler.h"
#include "src/core/workload.h"

namespace {

// The host program's business logic, exposed to the query language.
emcalc::FunctionRegistry PayrollFunctions() {
  using emcalc::Value;
  emcalc::FunctionRegistry reg = emcalc::BuiltinFunctions();
  reg.Register("tax", 1, [](std::span<const Value> a) {
    int64_t gross = a[0].is_int() ? a[0].AsInt() : 0;
    // Two brackets: 20% below 50k, 35% above.
    int64_t t = gross <= 50'000 ? gross / 5 : 10'000 + (gross - 50'000) * 35 / 100;
    return Value::Int(t);
  });
  reg.Register("net", 1, [](std::span<const Value> a) {
    int64_t gross = a[0].is_int() ? a[0].AsInt() : 0;
    int64_t t = gross <= 50'000 ? gross / 5 : 10'000 + (gross - 50'000) * 35 / 100;
    return Value::Int(gross - t);
  });
  reg.Register("with_raise", 1, [](std::span<const Value> a) {
    int64_t gross = a[0].is_int() ? a[0].AsInt() : 0;
    return Value::Int(gross * 110 / 100);
  });
  return reg;
}

void Show(const emcalc::CompiledQuery& q, const emcalc::Database& db,
          const char* label) {
  std::printf("\n== %s ==\nquery: %s\nplan:  %s\n", label,
              q.QueryString().c_str(), q.PlanString().c_str());
  emcalc::AlgebraEvalStats stats;
  auto answer = q.Run(db, &stats);
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return;
  }
  std::printf("%zu answer tuples (showing up to 5):\n", answer->size());
  size_t shown = 0;
  for (const auto& t : *answer) {
    if (++shown > 5) break;
    std::printf("  (");
    for (size_t i = 0; i < t.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", t[i].ToString().c_str());
    }
    std::printf(")\n");
  }
  std::printf("work: %llu tuples produced\n",
              static_cast<unsigned long long>(stats.tuples_produced));
}

}  // namespace

int main() {
  // EMP(id, dept, salary), DEPT(dept, budget), BONUS(id, amount).
  emcalc::Database db = emcalc::MakePayrollInstance(/*employees=*/200,
                                                    /*departments=*/6,
                                                    /*seed=*/2024);
  emcalc::Compiler compiler(PayrollFunctions());

  // Q1: net pay per employee — a pure extended-projection query; the plan
  // applies the host's net() point-wise, no domain enumeration anywhere.
  auto net_pay = compiler.Compile(
      "{e, n | exists d, s (EMP(e, d, s) and n = net(s))}");
  if (!net_pay.ok()) {
    std::printf("%s\n", net_pay.status().ToString().c_str());
    return 1;
  }
  Show(*net_pay, db, "net pay per employee");

  // Q2: employees whose 10% raise would *not* keep them under their
  // department's budget — negation over a function image, the paper's q2
  // shape (em-allowed, yet not range-restricted in the AB88 sense).
  auto over_budget = compiler.Compile(
      "{e | exists d, s, r (EMP(e, d, s) and with_raise(s) = r and "
      "not UNDER(d, r))}");
  if (!over_budget.ok()) {
    std::printf("%s\n", over_budget.status().ToString().c_str());
    return 1;
  }
  // Materialize UNDER(dept, amount) = amounts under budget for this demo:
  // amount values come from the raise image, so build it from a query.
  auto raise_values = compiler.Compile(
      "{d, r | exists e, s (EMP(e, d, s) and with_raise(s) = r)}");
  if (!raise_values.ok()) return 1;
  auto rv = raise_values->Run(db);
  if (!rv.ok()) return 1;
  for (const auto& t : *rv) {
    int64_t dept = t[0].AsInt();
    int64_t amount = t[1].AsInt();
    const emcalc::Relation* depts = db.Find("DEPT");
    for (const auto& drow : *depts) {
      if (drow[0].AsInt() == dept && amount <= drow[1].AsInt()) {
        if (!db.Insert("UNDER", {t[0], t[1]}).ok()) return 1;
      }
    }
  }
  if (db.Find("UNDER") == nullptr) {
    if (!db.AddRelation("UNDER", 2).ok()) return 1;
  }
  Show(*over_budget, db, "raises breaking the department budget");

  // Q3: employees whose net pay plus bonus beats a constant threshold —
  // function composition plus a join.
  auto comfortable = compiler.Compile(
      "{e | exists d, s, b, t (EMP(e, d, s) and BONUS(e, b) and "
      "plus(net(s), b) = t and GOOD(t))}");
  if (!comfortable.ok()) {
    std::printf("%s\n", comfortable.status().ToString().c_str());
    return 1;
  }
  // GOOD holds the "comfortable" total-income values seen in this instance
  // (a materialized predicate; Section 9 of the paper discusses externally
  // defined predicates like '>' — here we stay within finite relations).
  auto totals = compiler.Compile(
      "{t | exists e, d, s, b (EMP(e, d, s) and BONUS(e, b) and "
      "plus(net(s), b) = t)}");
  if (!totals.ok()) return 1;
  auto tv = totals->Run(db);
  if (!tv.ok()) return 1;
  for (const auto& t : *tv) {
    if (t[0].AsInt() >= 60'000) {
      if (!db.Insert("GOOD", {t[0]}).ok()) return 1;
    }
  }
  if (db.Find("GOOD") == nullptr) {
    if (!db.AddRelation("GOOD", 1).ok()) return 1;
  }
  Show(*comfortable, db, "net + bonus at least 60000");

  // Q4: a *parameterized* query — the paper's "em-allowed for X"
  // (Section 9). The parameters dept/floor are bound by this program at
  // run time; the safety analysis treats them as externally bounded.
  auto by_dept = compiler.CompileParameterized(
      "{e | exists s (EMP(e, d, s) and floor <= net(s))}", {"d", "floor"});
  if (!by_dept.ok()) {
    std::printf("%s\n", by_dept.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== parameterized: well-paid employees per department ==\n");
  for (int64_t dept = 0; dept < 3; ++dept) {
    auto r = by_dept->Run(db, {emcalc::Value::Int(dept),
                               emcalc::Value::Int(55'000)});
    if (!r.ok()) return 1;
    std::printf("  dept %lld: %zu employees net >= 55000\n",
                static_cast<long long>(dept), r->size());
  }

  // Q5: views — name a subquery once, reuse it as a relation atom.
  if (!compiler
           .DefineView("WELL_PAID",
                       "{e, d | exists s (EMP(e, d, s) and 60000 <= net(s))}")
           .ok()) {
    return 1;
  }
  auto dept_has_star = compiler.Compile(
      "{d | exists b (DEPT(d, b)) and exists e (WELL_PAID(e, d))}");
  if (!dept_has_star.ok()) {
    std::printf("%s\n", dept_has_star.status().ToString().c_str());
    return 1;
  }
  Show(*dept_has_star, db, "departments with a well-paid employee (view)");

  return 0;
}
